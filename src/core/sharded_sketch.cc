#include "core/sharded_sketch.h"

#include <algorithm>

#include "common/hash.h"

namespace sketchlink {

namespace {

/// Decorrelates the stripes' coin-flip streams: each stripe gets its own RNG
/// seed derived from the base seed, so stripe s makes the same decisions in
/// every run (and at every thread count) but different stripes do not march
/// in lockstep.
uint64_t StripeSeed(uint64_t base_seed, size_t stripe) {
  return base_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(stripe + 1));
}

/// Splits the live-block budget evenly; SIZE_MAX (unbounded) passes through.
size_t StripeMu(size_t mu, size_t num_stripes) {
  if (mu == SIZE_MAX) return SIZE_MAX;
  return std::max<size_t>(1, (mu + num_stripes - 1) / num_stripes);
}

/// Buckets a batch per stripe preserving submission order within each
/// stripe — the load-bearing step of the determinism guarantee.
template <typename StripeOfFn>
std::vector<std::vector<const SketchInsert*>> BucketByStripe(
    const std::vector<SketchInsert>& entries, size_t num_stripes,
    const StripeOfFn& stripe_of) {
  std::vector<std::vector<const SketchInsert*>> buckets(num_stripes);
  for (const SketchInsert& entry : entries) {
    buckets[stripe_of(*entry.block_key)].push_back(&entry);
  }
  return buckets;
}

}  // namespace

ShardedBlockSketch::ShardedBlockSketch(const BlockSketchOptions& options,
                                       KeyDistanceFn distance,
                                       size_t num_stripes)
    : options_(options) {
  if (num_stripes == 0) num_stripes = 1;
  stripes_.reserve(num_stripes);
  for (size_t s = 0; s < num_stripes; ++s) {
    BlockSketchOptions stripe_options = options;
    stripe_options.seed = StripeSeed(options.seed, s);
    stripes_.push_back(std::make_unique<Stripe>(stripe_options, distance));
  }
}

size_t ShardedBlockSketch::StripeOf(std::string_view block_key) const {
  return Fnv1a64(block_key) % stripes_.size();
}

void ShardedBlockSketch::Insert(const std::string& block_key,
                                std::string_view key_values, RecordId id) {
  Stripe& stripe = *stripes_[StripeOf(block_key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.sketch.Insert(block_key, key_values, id);
}

void ShardedBlockSketch::InsertBatch(const std::vector<SketchInsert>& entries,
                                     ThreadPool* pool) {
  const auto buckets = BucketByStripe(
      entries, stripes_.size(),
      [this](const std::string& key) { return StripeOf(key); });
  const auto drain = [&](size_t s) {
    Stripe& stripe = *stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const SketchInsert* entry : buckets[s]) {
      stripe.sketch.Insert(*entry->block_key, *entry->key_values, entry->id);
    }
  };
  if (pool != nullptr) {
    pool->RunShards(stripes_.size(), drain);
  } else {
    for (size_t s = 0; s < stripes_.size(); ++s) drain(s);
  }
}

std::vector<RecordId> ShardedBlockSketch::Candidates(
    const std::string& block_key, std::string_view key_values) const {
  const Stripe& stripe = *stripes_[StripeOf(block_key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.sketch.Candidates(block_key, key_values);
}

size_t ShardedBlockSketch::num_blocks() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += stripe->sketch.num_blocks();
  }
  return total;
}

BlockSketchStats ShardedBlockSketch::stats() const {
  BlockSketchStats total;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    const BlockSketchStats& s = stripe->sketch.stats();
    total.inserts += s.inserts;
    total.queries += s.queries;
    total.representative_comparisons += s.representative_comparisons;
    total.blocks_created += s.blocks_created;
    total.candidates_returned += s.candidates_returned;
  }
  return total;
}

size_t ShardedBlockSketch::ApproximateMemoryUsage() const {
  size_t total = sizeof(*this);
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += sizeof(Stripe) + stripe->sketch.ApproximateMemoryUsage();
  }
  return total;
}

ShardedSBlockSketch::ShardedSBlockSketch(const SBlockSketchOptions& options,
                                         kv::Db* spill_db,
                                         KeyDistanceFn distance,
                                         size_t num_stripes)
    : options_(options) {
  if (num_stripes == 0) num_stripes = 1;
  stripes_.reserve(num_stripes);
  for (size_t s = 0; s < num_stripes; ++s) {
    SBlockSketchOptions stripe_options = options;
    stripe_options.sketch.seed = StripeSeed(options.sketch.seed, s);
    stripe_options.mu = StripeMu(options.mu, num_stripes);
    stripes_.push_back(
        std::make_unique<Stripe>(stripe_options, spill_db, distance));
  }
}

size_t ShardedSBlockSketch::StripeOf(std::string_view block_key) const {
  return Fnv1a64(block_key) % stripes_.size();
}

Status ShardedSBlockSketch::Insert(const std::string& block_key,
                                   std::string_view key_values, RecordId id) {
  Stripe& stripe = *stripes_[StripeOf(block_key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.sketch.Insert(block_key, key_values, id);
}

Status ShardedSBlockSketch::InsertBatch(
    const std::vector<SketchInsert>& entries, ThreadPool* pool) {
  const auto buckets = BucketByStripe(
      entries, stripes_.size(),
      [this](const std::string& key) { return StripeOf(key); });
  std::vector<Status> results(stripes_.size());
  const auto drain = [&](size_t s) {
    Stripe& stripe = *stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const SketchInsert* entry : buckets[s]) {
      Status status =
          stripe.sketch.Insert(*entry->block_key, *entry->key_values,
                               entry->id);
      if (!status.ok()) {
        results[s] = std::move(status);
        return;
      }
    }
  };
  if (pool != nullptr) {
    pool->RunShards(stripes_.size(), drain);
  } else {
    for (size_t s = 0; s < stripes_.size(); ++s) drain(s);
  }
  for (Status& status : results) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Result<std::vector<RecordId>> ShardedSBlockSketch::Candidates(
    const std::string& block_key, std::string_view key_values) {
  Stripe& stripe = *stripes_[StripeOf(block_key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.sketch.Candidates(block_key, key_values);
}

size_t ShardedSBlockSketch::num_live_blocks() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += stripe->sketch.num_live_blocks();
  }
  return total;
}

SBlockSketchStats ShardedSBlockSketch::stats() const {
  SBlockSketchStats total;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    const SBlockSketchStats& s = stripe->sketch.stats();
    total.inserts += s.inserts;
    total.queries += s.queries;
    total.live_hits += s.live_hits;
    total.disk_loads += s.disk_loads;
    total.evictions += s.evictions;
    total.query_misses += s.query_misses;
    total.representative_comparisons += s.representative_comparisons;
    total.candidates_returned += s.candidates_returned;
  }
  return total;
}

size_t ShardedSBlockSketch::ApproximateMemoryUsage() const {
  size_t total = sizeof(*this);
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += sizeof(Stripe) + stripe->sketch.ApproximateMemoryUsage();
  }
  return total;
}

}  // namespace sketchlink

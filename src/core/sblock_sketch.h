#ifndef SKETCHLINK_CORE_SBLOCK_SKETCH_H_
#define SKETCHLINK_CORE_SBLOCK_SKETCH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/maintenance_queue.h"
#include "core/block_sketch.h"
#include "kv/db.h"

namespace sketchlink {

/// Block replacement policies for the ablation study. The paper's policy is
/// kEvictionStatus: es = e^(w*xi - alpha); kLru / kFifo are the classic
/// baselines it is compared against in bench_ablation_eviction.
enum class EvictionPolicy { kEvictionStatus, kLru, kFifo };

/// Tuning parameters of SBlockSketch.
struct SBlockSketchOptions {
  BlockSketchOptions sketch;
  /// Maximum number of live (in-memory) blocks — the paper's mu, a function
  /// of available main memory.
  size_t mu = 10000;
  /// Weight w of a block's successes xi in its eviction status (Fig. 5 uses
  /// w = 1.5).
  double w = 1.5;
  EvictionPolicy policy = EvictionPolicy::kEvictionStatus;
  /// Spill evicted blocks on a background maintenance thread instead of the
  /// evicting caller's path. Consumed by the sharded wrapper (which owns
  /// the maintenance thread); a bare SBlockSketch spills in the background
  /// iff its constructor received a MaintenanceQueue.
  bool background_spill = true;
  /// Backpressure bound on evictions handed to the maintenance thread but
  /// not yet durably written: an eviction waits for a free slot rather than
  /// letting the write-behind buffer grow without bound.
  size_t max_pending_spills = 8;
};

/// SBlockSketch (paper Sec. 6): BlockSketch for unbounded streams under a
/// constant memory budget. At most mu blocks stay live in a hash table T;
/// when a new block must come in and T is full, the live block with the
/// minimum eviction status es = e^(w*xi - alpha) is serialized into the
/// key/value store (Algorithm 4). xi counts how often a block was chosen as
/// target; alpha counts the evictions it survived, so stale unselective
/// blocks decay exponentially and get replaced first.
///
/// Concurrency: queries that hit a live block are lock-free — they read the
/// epoch-protected published view and never wait on inserts, evictions, or
/// spills. Misses (and all inserts) serialize behind an internal write
/// mutex. With a MaintenanceQueue attached, eviction encode+Put runs on its
/// worker thread; the victim leaves the live table immediately but is
/// readable from the write-behind buffer until the spill lands, so probes
/// never observe a hole. A failed background spill poisons *writes* (Insert
/// fails fast with the sticky status; see WaitForMaintenance /
/// ClearMaintenanceError) while reads keep serving every block from the
/// live table, the write-behind buffer, or the store.
class SBlockSketch {
 public:
  /// `spill_db` receives evicted blocks and must outlive this object. An
  /// empty `distance` (the default) selects the built-in metric of
  /// options.distance_kind and enables the batched kernel routing path;
  /// passing a function pins the legacy scalar loop. `maintenance`, when
  /// non-null, must outlive this object and turns evictions into
  /// asynchronous write-behind spills on its worker thread.
  SBlockSketch(const SBlockSketchOptions& options, kv::Db* spill_db,
               KeyDistanceFn distance = {},
               MaintenanceQueue* maintenance = nullptr);

  /// Waits for in-flight background spills (they capture `this`).
  ~SBlockSketch();

  SBlockSketch(const SBlockSketch&) = delete;
  SBlockSketch& operator=(const SBlockSketch&) = delete;

  /// Routes one stream record into its target sub-block, faulting the block
  /// in from secondary storage (or creating it) as needed. The key is
  /// interned once; all internal bookkeeping (live table, eviction queue,
  /// write-behind buffer) is keyed by the 32-bit id.
  Status Insert(std::string_view block_key, std::string_view key_values,
                RecordId id);

  /// Candidate ids for a query — same contract as BlockSketch::Candidates,
  /// but may trigger a load/eviction, hence non-const and fallible. A query
  /// for a block key the stream never produced is a miss: it returns an
  /// empty list without admitting (or anchor-seeding) a block, so probes
  /// cannot evict live state. Queries that hit a live block are lock-free
  /// and never block on maintenance; the returned CandidateList stays valid
  /// (and immutable) even if the block is evicted afterwards. A key that
  /// was never inserted short-circuits at the interner probe: no spill-store
  /// round-trip, no admission.
  Result<CandidateList> Candidates(std::string_view block_key,
                                   std::string_view key_values);

  /// Live blocks currently in T (always <= mu). Lock-free.
  size_t num_live_blocks() const { return live_.size(); }

  /// Entries in the eviction priority queue. Bounded by the live set: an
  /// entry is pushed only at admission (never on the hit path) and popped
  /// at eviction, so a pure-hit stream cannot grow the queue. Lock-free.
  size_t eviction_queue_size() const {
    return queue_size_.load(std::memory_order_relaxed);
  }

  /// Evicted blocks parked in the write-behind buffer (queued, mid-write,
  /// or failed).
  size_t pending_spills() const;

  /// Blocks until no background spill is in flight, then returns the sticky
  /// maintenance status (OK unless some spill failed since the last
  /// ClearMaintenanceError).
  Status WaitForMaintenance();

  /// Clears the sticky background-spill failure so writes may proceed.
  /// Blocks whose spill failed are still parked in the write-behind buffer
  /// and re-admitted on their next access.
  void ClearMaintenanceError();

  /// Thin view over the live instruments (see core/sketch_metrics.h); kept
  /// by-value so historical callers keep compiling unchanged.
  SBlockSketchStats stats() const { return metrics_.ToStats(); }
  const SBlockSketchOptions& options() const { return options_; }

  /// Live instruments; shard owners merge these via MergeFrom.
  const SBlockSketchMetrics& metrics() const { return metrics_; }

  /// Arms the per-operation latency histograms (clock reads). Thread-safe.
  void EnableLatencyTiming() {
    metrics_.timing_enabled.store(true, std::memory_order_relaxed);
  }

  /// Bytes held by T (the paper's O(mu * lambda) bound) — constant in the
  /// stream length, which is the point of Problem Statement 3.
  size_t ApproximateMemoryUsage() const;

  /// Eviction score of a live block, exposed for tests: w*xi - alpha
  /// (the logarithm of the paper's es, monotone in it).
  static double EvictionScore(double w, uint64_t xi, uint64_t alpha) {
    return w * static_cast<double>(xi) - static_cast<double>(alpha);
  }

 private:
  // Priority-queue entry. `score` orders ascending-eviction-status; for the
  // paper's policy the aging term alpha = E - admit_evictions shifts every
  // live block equally as the global eviction counter E grows, so the ORDER
  // of eviction statuses is fully captured by w*xi + admit_evictions.
  // Entries are pushed at admission only; the hit path just bumps the
  // block's atomics. `stamp` records the policy input (xi / last_access /
  // admitted_at) at push time, so PopVictim can detect that a block was
  // touched since and lazily re-rank it — the queue stays exactly one entry
  // per live block instead of one per access. `version` invalidates entries
  // of an earlier incarnation after evict + re-admit.
  struct QueueEntry {
    double score;
    uint64_t stamp;
    uint64_t version;
    StringInterner::Id key;
    bool operator>(const QueueEntry& other) const {
      return score > other.score;
    }
  };

  struct Victim {
    StringInterner::Id key = StringInterner::kInvalidId;
    std::shared_ptr<PublishedBlock> block;
  };

  /// Write-behind state of one evicted block. kQueued entries may be
  /// cancelled (re-admitted) before the worker picks them up; kWriting
  /// blocks a re-admission until the Put resolves; kFailed keeps the block
  /// in memory — it is authoritative again and nothing was lost.
  enum class SpillState { kQueued, kWriting, kFailed };
  struct PendingSpill {
    std::shared_ptr<PublishedBlock> block;
    SpillState state;
  };

  /// Spill-store key of an interned block key: the exact wire bytes the
  /// string-keyed implementation produced ("blk\x01" + key text), so spill
  /// files stay compatible.
  std::string SpillKey(StringInterner::Id key_id) const {
    std::string key("blk\x01");
    key.append(interner_.View(key_id));
    return key;
  }

  /// Returns the live block for `block_key`, reclaiming it from the
  /// write-behind buffer, loading it from the spill store (and dropping the
  /// now-stale spill entry), or — only when `create_if_missing` — creating
  /// it with its anchor seeded from `key_values`; evicts first when T is
  /// full (Algorithm 4). nullptr (with OK status) means the block exists
  /// nowhere and creation was not requested. Caller holds write_mu_.
  Result<std::shared_ptr<PublishedBlock>> EnsureLiveForWrite(
      StringInterner::Id key_id, std::string_view key_values,
      bool create_if_missing, uint64_t tick);

  /// Installs `block` into the live table (evicting first when full) and
  /// resets its replacement bookkeeping, exactly as a fresh admission.
  Status Admit(StringInterner::Id key_id,
               const std::shared_ptr<PublishedBlock>& block, uint64_t tick);

  /// Removes `key_id` from the write-behind buffer, waiting out an
  /// in-flight write. nullptr when not pending (a finished spill is in the
  /// store instead).
  std::shared_ptr<PublishedBlock> TakeFromPending(StringInterner::Id key_id);

  /// Algorithm 4, lines 7-8: select the min-eviction-status victim and
  /// transfer it to secondary storage — inline, or via the maintenance
  /// thread when one is attached.
  Status EvictOne();

  /// Pops the live block with the minimum current score, lazily re-ranking
  /// entries whose block was touched since they were pushed.
  Status PopVictim(Victim* victim);

  /// Background half of an asynchronous eviction: encode + Put, then
  /// resolve the pending entry (erase on success, kFailed + sticky status
  /// on failure).
  void SpillWorker(StringInterner::Id key_id);

  /// Miss half of Candidates: everything past the lock-free live-table hit.
  Result<CandidateList> CandidatesMiss(StringInterner::Id key_id,
                                       std::string_view key_values);

  /// Read-only service under a sticky spill failure: serve from the
  /// write-behind buffer or the store without admitting anything.
  Result<CandidateList> CandidatesPoisoned(StringInterner::Id key_id,
                                           std::string_view key_values);

  /// Routes and wraps the chosen sub-block's members, with metrics.
  Result<CandidateList> RouteAndCollect(std::shared_ptr<PublishedBlock> block,
                                        std::string_view key_values);

  /// Current queue score / policy stamp of a block.
  double QueueScore(const PublishedBlock& block) const;
  uint64_t CurrentStamp(const PublishedBlock& block) const;

  /// Pushes a queue entry reflecting `block`'s current state.
  void PushQueueEntry(StringInterner::Id key_id, const PublishedBlock& block);

  SBlockSketchOptions options_;
  SketchPolicy policy_;
  kv::Db* spill_db_;
  MaintenanceQueue* maintenance_;  // nullptr => synchronous spills
  mutable SBlockSketchMetrics metrics_;

  /// Maps block-key text to a dense 32-bit id (Intern on the insert path,
  /// lock-free Find on the query path). Ids are never reused, so an evicted
  /// block keeps its id across spill round-trips.
  StringInterner interner_;

  /// The hash table T. Readers go lock-free under an epoch::ReadGuard.
  EpochHashTable<PublishedBlock, uint32_t> live_;

  /// Writer state (write_mu_): eviction queue and global eviction counter.
  mutable std::mutex write_mu_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  uint64_t global_evictions_ = 0;

  /// Lock-free mirrors for gauges (scrape threads take no sketch lock).
  std::atomic<size_t> queue_size_{0};
  std::atomic<uint64_t> access_clock_{0};

  /// Write-behind buffer (pending_mu_; acquired after write_mu_, never
  /// before). in_flight_spills_ counts submitted spill jobs whose worker
  /// has not finished — the backpressure / drain quantity.
  mutable std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::unordered_map<StringInterner::Id, PendingSpill> pending_;
  size_t in_flight_spills_ = 0;
  Status maintenance_status_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_SBLOCK_SKETCH_H_

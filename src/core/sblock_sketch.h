#ifndef SKETCHLINK_CORE_SBLOCK_SKETCH_H_
#define SKETCHLINK_CORE_SBLOCK_SKETCH_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/block_sketch.h"
#include "kv/db.h"

namespace sketchlink {

/// Block replacement policies for the ablation study. The paper's policy is
/// kEvictionStatus: es = e^(w*xi - alpha); kLru / kFifo are the classic
/// baselines it is compared against in bench_ablation_eviction.
enum class EvictionPolicy { kEvictionStatus, kLru, kFifo };

/// Tuning parameters of SBlockSketch.
struct SBlockSketchOptions {
  BlockSketchOptions sketch;
  /// Maximum number of live (in-memory) blocks — the paper's mu, a function
  /// of available main memory.
  size_t mu = 10000;
  /// Weight w of a block's successes xi in its eviction status (Fig. 5 uses
  /// w = 1.5).
  double w = 1.5;
  EvictionPolicy policy = EvictionPolicy::kEvictionStatus;
};

/// SBlockSketch (paper Sec. 6): BlockSketch for unbounded streams under a
/// constant memory budget. At most mu blocks stay live in a hash table T;
/// when a new block must come in and T is full, the live block with the
/// minimum eviction status es = e^(w*xi - alpha) is serialized into the
/// key/value store (Algorithm 4). xi counts how often a block was chosen as
/// target; alpha counts the evictions it survived, so stale unselective
/// blocks decay exponentially and get replaced first.
class SBlockSketch {
 public:
  /// `spill_db` receives evicted blocks and must outlive this object. An
  /// empty `distance` (the default) selects the built-in metric of
  /// options.distance_kind and enables the batched kernel routing path;
  /// passing a function pins the legacy scalar loop.
  SBlockSketch(const SBlockSketchOptions& options, kv::Db* spill_db,
               KeyDistanceFn distance = {});

  SBlockSketch(const SBlockSketch&) = delete;
  SBlockSketch& operator=(const SBlockSketch&) = delete;

  /// Routes one stream record into its target sub-block, faulting the block
  /// in from secondary storage (or creating it) as needed.
  Status Insert(const std::string& block_key, std::string_view key_values,
                RecordId id);

  /// Candidate ids for a query — same contract as BlockSketch::Candidates,
  /// but may trigger a load/eviction, hence non-const and fallible. A query
  /// for a block key the stream never produced is a miss: it returns an
  /// empty list without admitting (or anchor-seeding) a block, so probes
  /// cannot evict live state.
  Result<std::vector<RecordId>> Candidates(const std::string& block_key,
                                           std::string_view key_values);

  /// Live blocks currently in T (always <= mu).
  size_t num_live_blocks() const { return live_.size(); }

  /// Thin view over the live instruments (see core/sketch_metrics.h); kept
  /// by-value so historical callers keep compiling unchanged.
  SBlockSketchStats stats() const { return metrics_.ToStats(); }
  const SBlockSketchOptions& options() const { return options_; }

  /// Live instruments; shard owners merge these via MergeFrom.
  const SBlockSketchMetrics& metrics() const { return metrics_; }

  /// Arms the per-operation latency histograms (clock reads). Follows the
  /// owner's synchronization, like every other mutation of this sketch.
  void EnableLatencyTiming() { metrics_.timing_enabled = true; }

  /// Bytes held by T (the paper's O(mu * lambda) bound) — constant in the
  /// stream length, which is the point of Problem Statement 3.
  size_t ApproximateMemoryUsage() const;

  /// Eviction score of a live block, exposed for tests: w*xi - alpha
  /// (the logarithm of the paper's es, monotone in it).
  static double EvictionScore(double w, uint64_t xi, uint64_t alpha) {
    return w * static_cast<double>(xi) - static_cast<double>(alpha);
  }

 private:
  struct LiveBlock {
    SketchBlock block;
    uint64_t xi = 0;             // times chosen as target block
    uint64_t admit_evictions = 0;  // global eviction count at admission
    uint64_t last_access = 0;    // for the LRU ablation
    uint64_t admitted_at = 0;    // for the FIFO ablation
    uint64_t version = 0;        // invalidates stale priority-queue entries
  };

  // Priority-queue entry (lazy deletion: stale versions are skipped on
  // poll). `score` orders ascending-eviction-status. For the paper's
  // policy the aging term alpha = E - admit_evictions shifts every live
  // block equally as the global eviction counter E grows, so the ORDER of
  // eviction statuses is fully captured by w*xi + admit_evictions — that is
  // what the queue stores, keeping per-operation maintenance O(log mu)
  // instead of rebuilding on every eviction.
  struct QueueEntry {
    double score;
    uint64_t version;
    std::string key;
    bool operator>(const QueueEntry& other) const {
      return score > other.score;
    }
  };

  std::string SpillKey(const std::string& block_key) const {
    return "blk\x01" + block_key;
  }

  /// Returns the live block for `block_key`, loading it from the spill
  /// store (and dropping the now-stale spill entry) or — only when
  /// `create_if_missing` — creating it; evicts first when T is full
  /// (Algorithm 4). nullptr (with OK status) means the block exists
  /// nowhere and creation was not requested.
  Result<LiveBlock*> EnsureLive(const std::string& block_key,
                                bool create_if_missing);

  /// Spills the block with the minimum eviction status.
  Status EvictOne();

  /// Current queue score of a block under the configured policy.
  double QueueScore(const LiveBlock& block) const;

  /// Re-enqueues `key` with its current score and a fresh version.
  void Requeue(const std::string& key, LiveBlock* block);

  /// Drops stale entries and rebuilds the heap when lazy deletion lets it
  /// grow far beyond the live set.
  void MaybeCompactQueue();

  SBlockSketchOptions options_;
  SketchPolicy policy_;
  kv::Db* spill_db_;
  mutable SBlockSketchMetrics metrics_;
  std::unordered_map<std::string, LiveBlock> live_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  uint64_t access_clock_ = 0;
  uint64_t global_evictions_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_SBLOCK_SKETCH_H_

#include "core/sblock_sketch.h"

#include <algorithm>
#include <limits>

#include "common/memory_tracker.h"
#include "obs/spans.h"

namespace sketchlink {

SBlockSketch::SBlockSketch(const SBlockSketchOptions& options,
                           kv::Db* spill_db, KeyDistanceFn distance)
    : options_(options),
      policy_(options.sketch, std::move(distance)),
      spill_db_(spill_db) {}

double SBlockSketch::QueueScore(const LiveBlock& block) const {
  switch (options_.policy) {
    case EvictionPolicy::kEvictionStatus:
      // Order-equivalent to es = e^(w*xi - alpha): the aging term
      // alpha = E - admit_evictions subtracts the same global E from every
      // live block, so w*xi + admit_evictions preserves the ranking.
      return options_.w * static_cast<double>(block.xi) +
             static_cast<double>(block.admit_evictions);
    case EvictionPolicy::kLru:
      return static_cast<double>(block.last_access);
    case EvictionPolicy::kFifo:
      return static_cast<double>(block.admitted_at);
  }
  return 0.0;
}

void SBlockSketch::Requeue(const std::string& key, LiveBlock* block) {
  ++block->version;
  queue_.push(QueueEntry{QueueScore(*block), block->version, key});
}

void SBlockSketch::MaybeCompactQueue() {
  if (queue_.size() <= 4 * live_.size() + 64) return;
  std::vector<QueueEntry> fresh;
  fresh.reserve(live_.size());
  for (const auto& [key, block] : live_) {
    fresh.push_back(QueueEntry{QueueScore(block), block.version, key});
  }
  queue_ = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                               std::greater<QueueEntry>>(
      std::greater<QueueEntry>(), std::move(fresh));
}

Status SBlockSketch::EvictOne() {
  // Algorithm 4, line 7: poll the block with the minimum eviction status,
  // skipping entries whose block was touched (re-queued) since they were
  // pushed.
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = live_.find(entry.key);
    if (it == live_.end() || it->second.version != entry.version) {
      continue;  // stale
    }
    // Algorithm 4, line 8: transfer the victim to secondary storage.
    obs::Span span("sketch", "evict");
    obs::LatencyTimer timer(metrics_.timing_enabled
                                ? &metrics_.spill_write_latency_nanos
                                : nullptr);
    std::string encoded;
    it->second.block.EncodeTo(&encoded);
    const Status put = spill_db_->Put(SpillKey(entry.key), encoded);
    if (!put.ok()) {
      span.MarkError();
      return put;
    }
    timer.Stop();
    live_.erase(it);
    metrics_.evictions.Inc();
    ++global_evictions_;  // survivors age implicitly (alpha = E - admit)
    return Status::OK();
  }
  return Status::Internal("eviction queue empty with live blocks present");
}

Result<SBlockSketch::LiveBlock*> SBlockSketch::EnsureLive(
    const std::string& block_key, bool create_if_missing) {
  ++access_clock_;

  // Algorithm 4, line 2: try the hash table T first.
  auto it = live_.find(block_key);
  if (it != live_.end()) {
    metrics_.live_hits.Inc();
    it->second.last_access = access_clock_;
    return &it->second;
  }

  // Line 4: resort to secondary storage. The timer is armed speculatively
  // and cancelled when the probe turns out to be a miss, so the spill-load
  // histogram measures actual reloads only.
  LiveBlock fresh;
  std::string encoded;
  bool loaded = false;
  // The span covers probe + decode: a miss records a (short) probe span,
  // which is exactly the cold-path cost a trace should show.
  obs::Span span("sketch", "spill_load");
  obs::LatencyTimer load_timer(metrics_.timing_enabled
                                   ? &metrics_.spill_load_latency_nanos
                                   : nullptr);
  const Status load = spill_db_->Get(SpillKey(block_key), &encoded);
  if (load.ok()) {
    std::string_view input(encoded);
    auto decoded = SketchBlock::DecodeFrom(&input);
    if (!decoded.ok()) {
      span.MarkError();
      return decoded.status();
    }
    fresh.block = std::move(*decoded);
    // Profile caches are derived data and not part of the spill format.
    policy_.RehydrateProfiles(&fresh.block);
    load_timer.Stop();
    loaded = true;
    metrics_.disk_loads.Inc();
  } else if (load.IsNotFound()) {
    load_timer.Cancel();
    if (!create_if_missing) return static_cast<LiveBlock*>(nullptr);
    fresh.block = SketchBlock(options_.sketch.lambda);
  } else {
    load_timer.Cancel();
    span.MarkError();
    return load;
  }

  // Lines 6-10: make room when T is full.
  if (live_.size() >= options_.mu) {
    SKETCHLINK_RETURN_IF_ERROR(EvictOne());
  }
  fresh.last_access = access_clock_;
  fresh.admitted_at = access_clock_;
  fresh.admit_evictions = global_evictions_;
  auto [inserted, ok] = live_.emplace(block_key, std::move(fresh));
  (void)ok;
  Requeue(inserted->first, &inserted->second);
  MaybeCompactQueue();
  if (loaded) {
    // The live copy is now authoritative; a leftover spill entry would
    // resurrect stale state on a later load. Deleting only after the
    // emplace means a failure here (surfaced to the caller) cannot lose
    // the block.
    const Status drop = spill_db_->Delete(SpillKey(block_key));
    if (!drop.ok() && !drop.IsNotFound()) return drop;
  }
  return &inserted->second;
}

Status SBlockSketch::Insert(const std::string& block_key,
                            std::string_view key_values, RecordId id) {
  obs::Span span("sketch", "insert");
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.insert_timer() : nullptr);
  metrics_.inserts.Inc();
  auto live = EnsureLive(block_key, /*create_if_missing=*/true);
  if (!live.ok()) return live.status();
  LiveBlock* block = *live;
  ++block->xi;  // the block was chosen as target by an incoming record
  Requeue(block_key, block);
  if (block->block.anchor.empty() && block->block.TotalMembers() == 0) {
    policy_.SeedAnchor(&block->block, key_values);
  }
  const SketchPolicy::RouteDecision decision =
      policy_.Route(block->block, key_values);
  metrics_.representative_comparisons.Add(decision.comparisons);
  if (decision.batched) {
    metrics_.route_batches.Inc();
    metrics_.reps_pruned.Add(decision.pruned);
    metrics_.route_batch_size.Record(decision.batch_size);
  }
  block->block.subs[decision.sub].members.push_back(id);
  policy_.MaybeAddRepresentative(&block->block.subs[decision.sub], key_values);
  return Status::OK();
}

Result<std::vector<RecordId>> SBlockSketch::Candidates(
    const std::string& block_key, std::string_view key_values) {
  obs::Span span("sketch", "candidates");
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.query_timer() : nullptr);
  metrics_.queries.Inc();
  auto live = EnsureLive(block_key, /*create_if_missing=*/false);
  if (!live.ok()) return live.status();
  if (*live == nullptr) {
    // The stream never produced this block: there is nothing to compare
    // against. Admitting an empty block here would evict a live one and
    // seed its anchor from the *query's* key values, skewing every later
    // sub-block choice.
    metrics_.query_misses.Inc();
    return std::vector<RecordId>();
  }
  LiveBlock* block = *live;
  ++block->xi;
  Requeue(block_key, block);
  const SketchPolicy::RouteDecision decision =
      policy_.Route(block->block, key_values);
  metrics_.representative_comparisons.Add(decision.comparisons);
  if (decision.batched) {
    metrics_.route_batches.Inc();
    metrics_.reps_pruned.Add(decision.pruned);
    metrics_.route_batch_size.Record(decision.batch_size);
  }
  std::vector<RecordId> members = block->block.subs[decision.sub].members;
  metrics_.candidates_returned.Add(members.size());
  return members;
}

size_t SBlockSketch::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this) + queue_.size() * sizeof(QueueEntry);
  for (const auto& [key, block] : live_) {
    bytes += StringFootprint(key) + block.block.ApproximateMemoryUsage() +
             sizeof(LiveBlock) - sizeof(SketchBlock) + sizeof(void*) * 2;
  }
  return bytes;
}

}  // namespace sketchlink

#include "core/sblock_sketch.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/epoch.h"
#include "common/memory_tracker.h"
#include "obs/spans.h"

namespace sketchlink {

SBlockSketch::SBlockSketch(const SBlockSketchOptions& options,
                           kv::Db* spill_db, KeyDistanceFn distance,
                           MaintenanceQueue* maintenance)
    : options_(options),
      policy_(options.sketch, std::move(distance)),
      spill_db_(spill_db),
      maintenance_(maintenance) {}

SBlockSketch::~SBlockSketch() {
  // Spill jobs capture `this`; wait them out before members destruct. Note
  // kFailed blocks still parked in the buffer are dropped here — callers
  // that care check WaitForMaintenance() before teardown.
  std::unique_lock<std::mutex> pl(pending_mu_);
  pending_cv_.wait(pl, [this] { return in_flight_spills_ == 0; });
}

double SBlockSketch::QueueScore(const PublishedBlock& block) const {
  switch (options_.policy) {
    case EvictionPolicy::kEvictionStatus:
      // Order-equivalent to es = e^(w*xi - alpha): the aging term
      // alpha = E - admit_evictions subtracts the same global E from every
      // live block, so w*xi + admit_evictions preserves the ranking.
      return options_.w *
                 static_cast<double>(block.xi.load(std::memory_order_relaxed)) +
             static_cast<double>(block.admit_evictions);
    case EvictionPolicy::kLru:
      return static_cast<double>(
          block.last_access.load(std::memory_order_relaxed));
    case EvictionPolicy::kFifo:
      return static_cast<double>(block.admitted_at);
  }
  return 0.0;
}

uint64_t SBlockSketch::CurrentStamp(const PublishedBlock& block) const {
  switch (options_.policy) {
    case EvictionPolicy::kEvictionStatus:
      return block.xi.load(std::memory_order_relaxed);
    case EvictionPolicy::kLru:
      return block.last_access.load(std::memory_order_relaxed);
    case EvictionPolicy::kFifo:
      return block.admitted_at;
  }
  return 0;
}

void SBlockSketch::PushQueueEntry(StringInterner::Id key_id,
                                  const PublishedBlock& block) {
  queue_.push(QueueEntry{QueueScore(block), CurrentStamp(block), block.version,
                         key_id});
  queue_size_.fetch_add(1, std::memory_order_relaxed);
}

Status SBlockSketch::PopVictim(Victim* victim) {
  // Algorithm 4, line 7: poll the block with the minimum eviction status.
  // Entries of evicted incarnations are dropped; entries whose block was
  // touched since push are re-ranked lazily — unless the fresh score is
  // still the minimum, in which case the block is the victim regardless.
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    queue_size_.fetch_sub(1, std::memory_order_relaxed);
    std::shared_ptr<PublishedBlock> block = live_.Find(entry.key);
    if (block == nullptr || block->version != entry.version) {
      continue;  // stale incarnation
    }
    const uint64_t stamp = CurrentStamp(*block);
    if (stamp != entry.stamp) {
      const double fresh = QueueScore(*block);
      if (!queue_.empty() && queue_.top().score < fresh) {
        queue_.push(QueueEntry{fresh, stamp, block->version, entry.key});
        queue_size_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    victim->key = entry.key;
    victim->block = std::move(block);
    return Status::OK();
  }
  return Status::Internal("eviction queue empty with live blocks present");
}

Status SBlockSketch::EvictOne() {
  Victim victim;
  SKETCHLINK_RETURN_IF_ERROR(PopVictim(&victim));

  if (maintenance_ == nullptr) {
    // Synchronous spill: Algorithm 4, line 8 on the caller's path.
    obs::Span span("sketch", "evict");
    obs::LatencyTimer timer(metrics_.timing_enabled.load(
                                std::memory_order_relaxed)
                                ? &metrics_.spill_write_latency_nanos
                                : nullptr);
    std::string encoded;
    victim.block->EncodeTo(&encoded);
    const Status put = spill_db_->Put(SpillKey(victim.key), encoded);
    if (!put.ok()) {
      span.MarkError();
      // The victim stays live; give it back its queue entry (the popped one
      // was consumed) so a later eviction can still find it.
      PushQueueEntry(victim.key, *victim.block);
      return put;
    }
    timer.Stop();
    live_.Erase(victim.key);
    metrics_.evictions.Inc();
    ++global_evictions_;  // survivors age implicitly (alpha = E - admit)
    return Status::OK();
  }

  // Asynchronous spill: park the victim in the write-behind buffer, retire
  // it from the live table now, and let the maintenance thread do the
  // encode + Put. Backpressure-bounded.
  {
    std::unique_lock<std::mutex> pl(pending_mu_);
    pending_cv_.wait(pl, [this] {
      return in_flight_spills_ < options_.max_pending_spills;
    });
    pending_[victim.key] = PendingSpill{victim.block, SpillState::kQueued};
    ++in_flight_spills_;
  }
  // Pending before erase: a concurrent reader probing live -> pending -> db
  // never observes a hole.
  live_.Erase(victim.key);
  metrics_.evictions.Inc();
  ++global_evictions_;
  maintenance_->Submit(
      [this, key = victim.key] { SpillWorker(key); });
  return Status::OK();
}

void SBlockSketch::SpillWorker(StringInterner::Id key_id) {
  std::shared_ptr<PublishedBlock> block;
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    auto it = pending_.find(key_id);
    if (it == pending_.end() || it->second.state != SpillState::kQueued) {
      // Cancelled: the block was re-admitted before the write started (or
      // an earlier worker job for the same key already handled the entry).
      --in_flight_spills_;
      pending_cv_.notify_all();
      return;
    }
    it->second.state = SpillState::kWriting;
    block = it->second.block;
  }
  // No writer can mutate the block now: it is outside the live table and
  // TakeFromPending waits while the state is kWriting.
  obs::Span span("sketch", "evict");
  obs::LatencyTimer timer(
      metrics_.timing_enabled.load(std::memory_order_relaxed)
          ? &metrics_.spill_write_latency_nanos
          : nullptr);
  std::string encoded;
  block->EncodeTo(&encoded);
  const Status put = spill_db_->Put(SpillKey(key_id), encoded);
  if (put.ok()) {
    timer.Stop();
  } else {
    timer.Cancel();
    span.MarkError();
  }
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    auto it = pending_.find(key_id);
    if (it != pending_.end() && it->second.state == SpillState::kWriting) {
      if (put.ok()) {
        pending_.erase(it);
      } else {
        // The in-memory copy is authoritative again; nothing was lost, but
        // writes stop until the owner acknowledges the failure.
        it->second.state = SpillState::kFailed;
        if (maintenance_status_.ok()) maintenance_status_ = put;
      }
    }
    --in_flight_spills_;
    pending_cv_.notify_all();
  }
}

std::shared_ptr<PublishedBlock> SBlockSketch::TakeFromPending(
    StringInterner::Id key_id) {
  std::unique_lock<std::mutex> pl(pending_mu_);
  for (;;) {
    auto it = pending_.find(key_id);
    if (it == pending_.end()) return nullptr;
    if (it->second.state == SpillState::kWriting) {
      // Mid-flight write-behind: wait for it to land (entry gone, the store
      // has the block) or fail (kFailed, the block is ours again).
      pending_cv_.wait(pl);
      continue;
    }
    // kQueued: cancel the spill (the worker finds the entry gone and
    // no-ops). kFailed: no durable copy exists; reclaim the block.
    std::shared_ptr<PublishedBlock> block = std::move(it->second.block);
    pending_.erase(it);
    return block;
  }
}

Status SBlockSketch::Admit(StringInterner::Id key_id,
                           const std::shared_ptr<PublishedBlock>& block,
                           uint64_t tick) {
  // Algorithm 4, lines 6-10: make room when T is full.
  if (live_.size() >= options_.mu) {
    SKETCHLINK_RETURN_IF_ERROR(EvictOne());
  }
  // Fresh replacement bookkeeping, identical whether the block arrived from
  // the write-behind buffer, the store, or creation — so async and sync
  // spill timing converge to the same routing state.
  block->xi.store(0, std::memory_order_relaxed);
  block->last_access.store(tick, std::memory_order_relaxed);
  block->admitted_at = tick;
  block->admit_evictions = global_evictions_;
  ++block->version;
  live_.Insert(key_id, block);
  PushQueueEntry(key_id, *block);
  return Status::OK();
}

Result<std::shared_ptr<PublishedBlock>> SBlockSketch::EnsureLiveForWrite(
    StringInterner::Id key_id, std::string_view key_values,
    bool create_if_missing, uint64_t tick) {
  // Algorithm 4, line 2: try the hash table T first. The writer probes
  // without a guard — it is the only thread that retires entries.
  std::shared_ptr<PublishedBlock> block = live_.Find(key_id);
  if (block != nullptr) {
    metrics_.live_hits.Inc();
    block->last_access.store(tick, std::memory_order_relaxed);
    return block;
  }

  // An evicted block whose spill has not landed yet is reclaimed from the
  // write-behind buffer — same content a store round-trip would produce,
  // minus the I/O.
  block = TakeFromPending(key_id);
  if (block != nullptr) {
    SKETCHLINK_RETURN_IF_ERROR(Admit(key_id, block, tick));
    return block;
  }

  // Line 4: resort to secondary storage. The timer is armed speculatively
  // and cancelled when the probe turns out to be a miss, so the spill-load
  // histogram measures actual reloads only. The span covers probe + decode:
  // a miss records a (short) probe span, which is exactly the cold-path
  // cost a trace should show.
  std::string encoded;
  obs::Span span("sketch", "spill_load");
  obs::LatencyTimer load_timer(
      metrics_.timing_enabled.load(std::memory_order_relaxed)
          ? &metrics_.spill_load_latency_nanos
          : nullptr);
  const Status load = spill_db_->Get(SpillKey(key_id), &encoded);
  if (load.ok()) {
    std::string_view input(encoded);
    auto decoded = SketchBlock::DecodeFrom(&input);
    if (!decoded.ok()) {
      span.MarkError();
      return decoded.status();
    }
    // Profile caches are derived data and not part of the spill format.
    policy_.RehydrateProfiles(&*decoded);
    load_timer.Stop();
    metrics_.disk_loads.Inc();
    block = PublishedBlock::FromSketchBlock(std::move(*decoded));
    SKETCHLINK_RETURN_IF_ERROR(Admit(key_id, block, tick));
    // The live copy is now authoritative; a leftover spill entry would
    // resurrect stale state on a later load. Deleting only after the
    // admission means a failure here (surfaced to the caller) cannot lose
    // the block.
    const Status drop = spill_db_->Delete(SpillKey(key_id));
    if (!drop.ok() && !drop.IsNotFound()) return drop;
    return block;
  }
  load_timer.Cancel();
  if (!load.IsNotFound()) {
    span.MarkError();
    return load;
  }
  if (!create_if_missing) return std::shared_ptr<PublishedBlock>(nullptr);
  block = std::make_shared<PublishedBlock>(options_.sketch.lambda);
  // The anchor must be complete before the block becomes visible: it is
  // immutable-after-publish.
  policy_.SeedAnchor(block.get(), key_values);
  SKETCHLINK_RETURN_IF_ERROR(Admit(key_id, block, tick));
  return block;
}

Status SBlockSketch::Insert(std::string_view block_key,
                            std::string_view key_values, RecordId id) {
  obs::Span span("sketch", "insert");
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.insert_timer() : nullptr);
  metrics_.inserts.Inc();
  std::lock_guard<std::mutex> lock(write_mu_);
  {
    // A failed background spill poisons writes: admitting more data would
    // force more evictions into a failing store.
    std::lock_guard<std::mutex> pl(pending_mu_);
    if (!maintenance_status_.ok()) return maintenance_status_;
  }
  const uint64_t tick =
      access_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  const StringInterner::Id key_id = interner_.Intern(block_key);
  auto live = EnsureLiveForWrite(key_id, key_values,
                                 /*create_if_missing=*/true, tick);
  if (!live.ok()) {
    span.MarkError();
    return live.status();
  }
  std::shared_ptr<PublishedBlock> block = *live;
  block->xi.fetch_add(1, std::memory_order_relaxed);
  // No queue push here: the admission-time entry stays valid, and PopVictim
  // re-ranks it lazily from the stamps. The queue is bounded by the live
  // set no matter how hot the access stream is.
  const SketchPolicy::RouteDecision decision =
      policy_.Route(*block, key_values);
  metrics_.representative_comparisons.Add(decision.comparisons);
  if (decision.batched) {
    metrics_.route_batches.Inc();
    metrics_.reps_pruned.Add(decision.pruned);
    metrics_.route_batch_size.Record(decision.batch_size);
  }
  block->sub(decision.sub).members.Append(id);
  const RepSet* current =
      block->sub(decision.sub).reps.load(std::memory_order_relaxed);
  const SketchPolicy::RepUpdate update =
      policy_.PlanRepUpdate(current->representatives.size());
  if (update.kind != SketchPolicy::RepUpdate::Kind::kNone) {
    auto* fresh = new RepSet(*current);
    policy_.ApplyRepUpdate(fresh, update, key_values);
    block->PublishReps(decision.sub, fresh);
  }
  return Status::OK();
}

Result<CandidateList> SBlockSketch::RouteAndCollect(
    std::shared_ptr<PublishedBlock> block, std::string_view key_values) {
  const SketchPolicy::RouteDecision decision =
      policy_.Route(*block, key_values);
  metrics_.representative_comparisons.Add(decision.comparisons);
  if (decision.batched) {
    metrics_.route_batches.Inc();
    metrics_.reps_pruned.Add(decision.pruned);
    metrics_.route_batch_size.Record(decision.batch_size);
  }
  CandidateList candidates(std::move(block), decision.sub);
  metrics_.candidates_returned.Add(candidates.size());
  return candidates;
}

Result<CandidateList> SBlockSketch::Candidates(std::string_view block_key,
                                               std::string_view key_values) {
  obs::Span span("sketch", "candidates");
  obs::LatencyTimer timer(
      SKETCHLINK_OBS_SAMPLE_HIT() ? metrics_.query_timer() : nullptr);
  metrics_.queries.Inc();
  // A key that was never interned was never inserted, so no live, pending,
  // or spilled copy can exist: the stream never produced this block. This
  // answers the true miss without a store round-trip.
  const StringInterner::Id key_id = interner_.Find(block_key);
  if (key_id == StringInterner::kInvalidId) {
    metrics_.query_misses.Inc();
    return CandidateList();
  }
  {
    // Fast path: a live hit reads the published view lock-free and never
    // waits on inserts, evictions, or spills.
    epoch::ReadGuard guard;
    std::shared_ptr<PublishedBlock> block = live_.Find(key_id);
    if (block != nullptr) {
      metrics_.live_hits.Inc();
      const uint64_t tick =
          access_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
      block->last_access.store(tick, std::memory_order_relaxed);
      block->xi.fetch_add(1, std::memory_order_relaxed);
      return RouteAndCollect(std::move(block), key_values);
    }
  }
  return CandidatesMiss(key_id, key_values);
}

Result<CandidateList> SBlockSketch::CandidatesMiss(
    StringInterner::Id key_id, std::string_view key_values) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const uint64_t tick =
      access_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  // An insert may have admitted the block between the lock-free probe and
  // here.
  std::shared_ptr<PublishedBlock> block = live_.Find(key_id);
  if (block != nullptr) {
    metrics_.live_hits.Inc();
    block->last_access.store(tick, std::memory_order_relaxed);
  } else {
    bool poisoned;
    {
      std::lock_guard<std::mutex> pl(pending_mu_);
      poisoned = !maintenance_status_.ok();
    }
    if (poisoned) return CandidatesPoisoned(key_id, key_values);
    auto ensured = EnsureLiveForWrite(key_id, key_values,
                                      /*create_if_missing=*/false, tick);
    if (!ensured.ok()) return ensured.status();
    block = *ensured;
    if (block == nullptr) {
      // The stream never produced this block: there is nothing to compare
      // against. Admitting an empty block here would evict a live one and
      // seed its anchor from the *query's* key values, skewing every later
      // sub-block choice.
      metrics_.query_misses.Inc();
      return CandidateList();
    }
  }
  block->xi.fetch_add(1, std::memory_order_relaxed);
  return RouteAndCollect(std::move(block), key_values);
}

Result<CandidateList> SBlockSketch::CandidatesPoisoned(
    StringInterner::Id key_id, std::string_view key_values) {
  // Writes are refused while a spill failure is sticky, but reads keep
  // serving: the block is in the write-behind buffer or durably in the
  // store. Neither path admits (admission would evict, and evictions are
  // what is failing), so a published read snapshot is never corrupted by
  // the failure.
  std::shared_ptr<PublishedBlock> block;
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    auto it = pending_.find(key_id);
    if (it != pending_.end()) block = it->second.block;
  }
  if (block != nullptr) {
    block->xi.fetch_add(1, std::memory_order_relaxed);
    return RouteAndCollect(std::move(block), key_values);
  }
  std::string encoded;
  const Status load = spill_db_->Get(SpillKey(key_id), &encoded);
  if (load.IsNotFound()) {
    metrics_.query_misses.Inc();
    return CandidateList();
  }
  SKETCHLINK_RETURN_IF_ERROR(load);
  std::string_view input(encoded);
  auto decoded = SketchBlock::DecodeFrom(&input);
  if (!decoded.ok()) return decoded.status();
  policy_.RehydrateProfiles(&*decoded);
  metrics_.disk_loads.Inc();
  return RouteAndCollect(PublishedBlock::FromSketchBlock(std::move(*decoded)),
                         key_values);
}

size_t SBlockSketch::pending_spills() const {
  std::lock_guard<std::mutex> pl(pending_mu_);
  return pending_.size();
}

Status SBlockSketch::WaitForMaintenance() {
  std::unique_lock<std::mutex> pl(pending_mu_);
  pending_cv_.wait(pl, [this] { return in_flight_spills_ == 0; });
  return maintenance_status_;
}

void SBlockSketch::ClearMaintenanceError() {
  std::lock_guard<std::mutex> pl(pending_mu_);
  maintenance_status_ = Status::OK();
}

size_t SBlockSketch::ApproximateMemoryUsage() const {
  epoch::ReadGuard guard;
  size_t bytes = sizeof(*this) +
                 queue_size_.load(std::memory_order_relaxed) *
                     sizeof(QueueEntry) +
                 interner_.ApproximateMemoryUsage();
  live_.ForEach([&bytes](uint32_t /*key*/,
                         const std::shared_ptr<PublishedBlock>& block) {
    bytes += block->ApproximateMemoryUsage() + sizeof(void*) * 2;
  });
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    for (const auto& [key, pending] : pending_) {
      bytes += sizeof(key) + pending.block->ApproximateMemoryUsage();
    }
  }
  return bytes;
}

}  // namespace sketchlink

#include "core/skip_bloom.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/coding.h"
#include "common/memory_tracker.h"

namespace sketchlink {

SkipBloom::SkipBloom(const SkipBloomOptions& options)
    : options_(options),
      sampler_(1.0 / std::sqrt(static_cast<double>(
                         std::max<uint64_t>(options.expected_keys, 1))),
               options.seed),
      list_(options.seed ^ 0x51ULL) {
  // Sentinel block: the empty key sorts before every real key, so
  // FindLessOrEqual always lands on a block and keys smaller than the first
  // sampled key have a home.
  Block sentinel;
  list_.InsertOrAssign(std::string(), std::move(sentinel));
}

size_t SkipBloom::FilterCapacity() const {
  const double sqrt_n =
      std::sqrt(static_cast<double>(std::max<uint64_t>(
          options_.expected_keys, 1)));
  const double capacity =
      sqrt_n / static_cast<double>(std::max<size_t>(
                   options_.filters_per_block, 1));
  return std::max<size_t>(static_cast<size_t>(std::ceil(capacity)), 8);
}

AnnotatedBloomFilter* SkipBloom::AddFilter(Block* block) {
  auto filter = std::make_shared<AnnotatedBloomFilter>(
      FilterCapacity(), options_.bloom_fp,
      options_.seed + (++filter_seed_counter_));
  AnnotatedBloomFilter* raw = filter.get();
  block->filters.push_back(std::move(filter));
  block->current = static_cast<int>(block->filters.size()) - 1;
  ++owned_filters_;
  return raw;
}

void SkipBloom::Insert(std::string_view key) {
  ++stats_.inserts;
  const std::string k(key);

  // The synopsis summarizes the universe (set) of blocking keys: a key the
  // structure already reports present contributes nothing new, and skipping
  // it keeps the skip-list sample uniform over DISTINCT keys rather than
  // frequency-weighted — which is what the Monte-Carlo overlap estimator
  // needs. (A Bloom false positive here merely drops a duplicate-looking
  // key; membership stays correct.)
  if (options_.dedup_inserts && QueryInternal(k)) {
    ++stats_.duplicate_skips;
    return;
  }

  if (sampler_.NextSample()) {
    // Algorithm 2, lines 1-8: promote `key` to the skip list.
    List::Node* prev = list_.FindLessOrEqual(k);
    if (prev != nullptr && prev->key == k) {
      // The key is already a block: its membership is recorded by the node
      // itself, nothing to move.
      return;
    }
    ++stats_.sampled_keys;
    Block block;
    if (prev != nullptr) {
      // Reference every predecessor filter whose annotated range may hold
      // keys that now belong to the new block (everything >= k); this is
      // the Fig. 2 hand-off. The filters stay shared, not copied.
      for (const FilterPtr& filter : prev->value.filters) {
        if (filter->count() > 0 && filter->max_key() >= k) {
          block.filters.push_back(filter);
        }
      }
    }
    List::Node* node = list_.InsertOrAssign(k, std::move(block));
    AddFilter(&node->value);
    return;
  }

  // Algorithm 2, lines 10-18: absorb `key` into the nearest block's current
  // Bloom filter.
  List::Node* target = list_.FindLessOrEqual(k);
  // The sentinel guarantees a target exists.
  if (target->key == k) return;  // key coincides with a sampled block
  Block& block = target->value;
  AnnotatedBloomFilter* current =
      (block.current >= 0) ? block.filters[block.current].get() : nullptr;
  if (current == nullptr || current->Full()) {
    current = AddFilter(&block);
  }
  current->Insert(k);
}

bool SkipBloom::Query(std::string_view key) const {
  ++stats_.queries;
  return QueryInternal(std::string(key));
}

bool SkipBloom::QueryConjunction(const std::vector<std::string>& keys) const {
  if (keys.empty()) return false;
  for (const std::string& key : keys) {
    if (!Query(key)) return false;
  }
  return true;
}

bool SkipBloom::QueryInternal(const std::string& k) const {
  List::Node* target = list_.FindLessOrEqual(k);
  if (target == nullptr) return false;
  if (!target->key.empty() && target->key == k) return true;
  // Algorithm 1: scan the block's filters (owned + referenced), using the
  // min/max annotations to skip filters whose range cannot contain k.
  for (const FilterPtr& filter : target->value.filters) {
    ++stats_.filter_probes;
    if (filter->MayContain(k)) return true;
  }
  return false;
}

std::vector<std::string> SkipBloom::SampledKeys() const {
  std::vector<std::string> keys;
  keys.reserve(list_.size());
  for (auto it = list_.NewIterator(); it.Valid(); it.Next()) {
    if (!it.key().empty()) keys.push_back(it.key());
  }
  return keys;
}

double SkipBloom::EstimateDistinctKeys() const {
  const double inverse_p = std::sqrt(static_cast<double>(
      std::max<uint64_t>(options_.expected_keys, 1)));
  // list_.size() includes the sentinel; real sampled keys are size() - 1.
  const double sampled =
      static_cast<double>(list_.size() > 0 ? list_.size() - 1 : 0);
  return sampled * inverse_p;
}

double SkipBloom::EstimateRangeCount(std::string_view lo,
                                     std::string_view hi) const {
  if (hi < lo) return 0.0;
  const double inverse_p = std::sqrt(static_cast<double>(
      std::max<uint64_t>(options_.expected_keys, 1)));
  size_t in_range = 0;
  for (auto it = list_.NewIterator(); it.Valid(); it.Next()) {
    if (it.key().empty()) continue;  // sentinel
    if (it.key() > hi) break;        // sorted order
    if (it.key() >= lo) ++in_range;
  }
  return static_cast<double>(in_range) * inverse_p;
}

namespace {

constexpr uint32_t kSkipBloomMagic = 0x534b4250;  // "SKBP"

// Bit-exact double <-> uint64 transport for the fp option.
uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void SkipBloom::EncodeTo(std::string* dst) const {
  PutFixed32(dst, kSkipBloomMagic);
  PutVarint64(dst, options_.expected_keys);
  PutVarint64(dst, options_.filters_per_block);
  PutFixed64(dst, DoubleBits(options_.bloom_fp));
  dst->push_back(options_.dedup_inserts ? 1 : 0);
  PutFixed64(dst, options_.seed);

  // Filters are shared between blocks (the Fig. 2 references); serialize
  // each distinct filter once and refer to it by index.
  std::unordered_map<const AnnotatedBloomFilter*, uint32_t> filter_ids;
  std::string filter_section;
  for (auto it = list_.NewIterator(); it.Valid(); it.Next()) {
    for (const FilterPtr& filter : it.value().filters) {
      if (filter_ids.emplace(filter.get(),
                             static_cast<uint32_t>(filter_ids.size()))
              .second) {
        filter->EncodeTo(&filter_section);
      }
    }
  }
  PutVarint32(dst, static_cast<uint32_t>(filter_ids.size()));
  dst->append(filter_section);

  PutVarint64(dst, list_.size());
  for (auto it = list_.NewIterator(); it.Valid(); it.Next()) {
    PutLengthPrefixed(dst, it.key());
    const Block& block = it.value();
    PutVarint32(dst, static_cast<uint32_t>(block.current + 1));  // -1 -> 0
    PutVarint32(dst, static_cast<uint32_t>(block.filters.size()));
    for (const FilterPtr& filter : block.filters) {
      PutVarint32(dst, filter_ids.at(filter.get()));
    }
  }
}

Result<std::unique_ptr<SkipBloom>> SkipBloom::DecodeFrom(
    std::string_view* input) {
  uint32_t magic;
  if (!GetFixed32(input, &magic) || magic != kSkipBloomMagic) {
    return Status::Corruption("bad SkipBloom magic");
  }
  SkipBloomOptions options;
  uint64_t filters_per_block;
  uint64_t fp_bits;
  if (!GetVarint64(input, &options.expected_keys) ||
      !GetVarint64(input, &filters_per_block) ||
      !GetFixed64(input, &fp_bits) || input->empty()) {
    return Status::Corruption("truncated SkipBloom header");
  }
  options.filters_per_block = static_cast<size_t>(filters_per_block);
  options.bloom_fp = DoubleFromBits(fp_bits);
  options.dedup_inserts = input->front() != 0;
  input->remove_prefix(1);
  if (!GetFixed64(input, &options.seed)) {
    return Status::Corruption("truncated SkipBloom seed");
  }

  auto synopsis = std::make_unique<SkipBloom>(options);
  // Drop the constructor's sentinel; the encoded block list contains it.
  synopsis->list_.Clear();
  synopsis->owned_filters_ = 0;

  uint32_t num_filters;
  if (!GetVarint32(input, &num_filters)) {
    return Status::Corruption("truncated SkipBloom filter count");
  }
  std::vector<FilterPtr> filters;
  filters.reserve(num_filters);
  for (uint32_t i = 0; i < num_filters; ++i) {
    auto filter = AnnotatedBloomFilter::DecodeFrom(input);
    if (!filter.ok()) return filter.status();
    filters.push_back(
        std::make_shared<AnnotatedBloomFilter>(std::move(*filter)));
  }
  synopsis->owned_filters_ = filters.size();

  uint64_t num_blocks;
  if (!GetVarint64(input, &num_blocks)) {
    return Status::Corruption("truncated SkipBloom block count");
  }
  for (uint64_t b = 0; b < num_blocks; ++b) {
    std::string_view key;
    uint32_t current_plus_one;
    uint32_t num_refs;
    if (!GetLengthPrefixed(input, &key) ||
        !GetVarint32(input, &current_plus_one) ||
        !GetVarint32(input, &num_refs)) {
      return Status::Corruption("truncated SkipBloom block");
    }
    Block block;
    block.current = static_cast<int>(current_plus_one) - 1;
    block.filters.reserve(num_refs);
    for (uint32_t r = 0; r < num_refs; ++r) {
      uint32_t id;
      if (!GetVarint32(input, &id) || id >= filters.size()) {
        return Status::Corruption("bad SkipBloom filter reference");
      }
      block.filters.push_back(filters[id]);
    }
    if (block.current >= static_cast<int>(block.filters.size())) {
      return Status::Corruption("bad SkipBloom current-filter index");
    }
    synopsis->list_.InsertOrAssign(std::string(key), std::move(block));
  }
  return synopsis;
}

size_t SkipBloom::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this) + list_.ApproximateNodeMemory();
  std::unordered_set<const void*> seen;
  for (auto it = list_.NewIterator(); it.Valid(); it.Next()) {
    bytes += StringHeapBytes(it.key());
    const Block& block = it.value();
    bytes += block.filters.capacity() * sizeof(FilterPtr);
    for (const FilterPtr& filter : block.filters) {
      if (seen.insert(filter.get()).second) {
        bytes += filter->ApproximateMemoryUsage();
      }
    }
  }
  return bytes;
}

}  // namespace sketchlink

#ifndef SKETCHLINK_CORE_SKIP_BLOOM_H_
#define SKETCHLINK_CORE_SKIP_BLOOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/annotated_bloom_filter.h"
#include "common/counter.h"
#include "common/random.h"
#include "skiplist/skip_list.h"

namespace sketchlink {

/// Tuning parameters of a SkipBloom synopsis.
struct SkipBloomOptions {
  /// Expected number of blocking keys n; the Bernoulli sampling probability
  /// is n^-1/2 and each Bloom filter is sized for sqrt(n)/m keys.
  uint64_t expected_keys = 1'000'000;
  /// Number m of Bloom filters per block, in expectation (paper uses m = 5).
  size_t filters_per_block = 5;
  /// False-positive probability of each Bloom filter (paper uses 0.05).
  double bloom_fp = 0.05;
  /// Short-circuit inserts of keys the synopsis already reports present.
  /// Keeps the skip-list sample ~uniform over DISTINCT keys (what the
  /// Monte-Carlo overlap estimator wants) instead of frequency-weighted,
  /// at the cost of one membership probe per insert and of dropping the
  /// occasional novel key that collides with a Bloom false positive
  /// (membership answers stay correct either way). The paper's variant
  /// (footnote 5) re-inserts duplicates; set false to reproduce it.
  bool dedup_inserts = true;
  uint64_t seed = 0xb10cULL;
};

/// Usage counters exposed for the experiments. RelaxedCounter fields make
/// the const Query path (which bumps queries/filter_probes through the
/// mutable stats) race-free under concurrent readers.
struct SkipBloomStats {
  RelaxedCounter inserts = 0;
  RelaxedCounter sampled_keys = 0;   // keys promoted to the skip list
  RelaxedCounter duplicate_skips = 0;  // inserts short-circuited by membership
  RelaxedCounter queries = 0;
  RelaxedCounter filter_probes = 0;  // Bloom filters touched across all queries
};

/// SkipBloom (paper Sec. 4): a synopsis of the universe of blocking keys.
///
/// A Bernoulli sample (p = n^-1/2) of the key stream is promoted into a skip
/// list; every other key is absorbed by a small Bloom filter chained under
/// the nearest sampled key to its left. Each filter is annotated with the
/// min/max keys it holds so that (a) queries skip filters that cannot
/// contain the key, and (b) a newly sampled key can take shared references
/// to its predecessor's filters whose range overlaps the new block (Fig. 2),
/// keeping the blocking mechanism consistent without moving data.
///
/// Memory is O(sqrt(n) * (2 + m)); insert is O(log sqrt(n) + m) and query
/// O(log sqrt(n) + m) expected (plus referenced-filter scans), which is the
/// sublinear profile Problem Statement 1 requires.
class SkipBloom {
 public:
  explicit SkipBloom(const SkipBloomOptions& options = SkipBloomOptions());

  SkipBloom(const SkipBloom&) = delete;
  SkipBloom& operator=(const SkipBloom&) = delete;

  /// Inserts blocking key `key` (Algorithm 2).
  void Insert(std::string_view key);

  /// Membership query (Algorithm 1): true when `key` was (probably)
  /// inserted; false when it definitely was not. One-sided error: no false
  /// negatives; false positives bounded by 1 - (1 - fp)^m per block.
  bool Query(std::string_view key) const;

  /// Composite-key membership (Sec. 4.1: "In case of composite keys, we
  /// perform a conjunction using the individual keys"): true iff every
  /// individual key queries true. Error stays one-sided; conjunction
  /// DECREASES the false-positive probability (all parts must collide).
  bool QueryConjunction(const std::vector<std::string>& keys) const;

  /// Keys currently promoted to the skip list's base level — a uniform
  /// random sample of the inserted keys. The overlap estimator uses this as
  /// its Monte-Carlo sample (Sec. 4.3).
  std::vector<std::string> SampledKeys() const;

  /// Estimated number of distinct keys summarized: each base-level key
  /// represents 1/p = sqrt(expected_keys) keys of the stream in expectation
  /// (Horvitz-Thompson over the Bernoulli sample). Relative error shrinks
  /// as 1/sqrt(sample size).
  double EstimateDistinctKeys() const;

  /// Estimated number of distinct keys in [lo, hi] (inclusive), by scaling
  /// the sampled keys falling in the range — the "database summarization
  /// beyond record linkage" direction the paper's introduction gestures at
  /// (e.g. sizing a planned linkage of one alphabetical shard).
  double EstimateRangeCount(std::string_view lo, std::string_view hi) const;

  /// Number of base-level blocks.
  size_t num_blocks() const { return list_.size(); }

  /// Total number of distinct filter objects (owned, not references).
  size_t num_filters() const { return owned_filters_; }

  const SkipBloomStats& stats() const { return stats_; }
  const SkipBloomOptions& options() const { return options_; }

  /// Bytes held by the synopsis: skip-list nodes, filter objects and
  /// reference vectors. This is the quantity Figure 6b plots.
  size_t ApproximateMemoryUsage() const;

  /// Serializes the whole synopsis (options, blocks, filters — shared
  /// filter references are preserved) so a data custodian can ship it to
  /// another site for pre-blocking analysis, the Fig. 3 protocol. Appended
  /// to `*dst`.
  void EncodeTo(std::string* dst) const;

  /// Reconstructs a synopsis from EncodeTo output. The result answers
  /// queries identically to the original; further inserts are permitted and
  /// draw from a fresh sampling stream.
  static Result<std::unique_ptr<SkipBloom>> DecodeFrom(
      std::string_view* input);

 private:
  using FilterPtr = std::shared_ptr<AnnotatedBloomFilter>;

  /// Per-block payload: the chain of Bloom filters. `filters` mixes filters
  /// owned by this block and filters referenced from the predecessor; the
  /// last owned filter is the "current" one absorbing new keys.
  struct Block {
    std::vector<FilterPtr> filters;
    // Index into `filters` of the current (active) owned filter, or -1.
    int current = -1;
  };

  using List = SkipList<std::string, Block>;

  /// Capacity of each individual filter: sqrt(n)/m.
  size_t FilterCapacity() const;

  /// Membership check without touching the public query counter.
  bool QueryInternal(const std::string& k) const;

  /// Appends a fresh owned filter to `block` and marks it current.
  AnnotatedBloomFilter* AddFilter(Block* block);

  SkipBloomOptions options_;
  mutable SkipBloomStats stats_;
  BernoulliSampler sampler_;
  List list_;
  size_t owned_filters_ = 0;
  uint64_t filter_seed_counter_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_SKIP_BLOOM_H_

#ifndef SKETCHLINK_CORE_OVERLAP_H_
#define SKETCHLINK_CORE_OVERLAP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/skip_bloom.h"

namespace sketchlink {

/// Result of the Monte-Carlo overlap estimation (paper Sec. 4.3).
struct OverlapEstimate {
  /// Estimated overlap coefficient |D_A ∩ D_B| / |D_B|.
  double coefficient = 0.0;
  /// Number of sampled keys of B queried against A's synopsis.
  size_t sample_size = 0;
  /// How many of them A's synopsis reported present.
  size_t hits = 0;
};

/// Estimates the overlap coefficient between data sets A and B by querying
/// the uniformly sampled keys of B's synopsis against A's synopsis — the
/// "synopses only" protocol of Fig. 3, with O(sqrt(n)(log sqrt(n)+sqrt(n)))
/// total work instead of O(n ...) for the full key iteration.
OverlapEstimate EstimateOverlapCoefficient(const SkipBloom& synopsis_a,
                                           const SkipBloom& synopsis_b);

/// Slower variant: queries every key of `keys_b` against A's synopsis (the
/// one-synopsis protocol of Sec. 4.3).
OverlapEstimate EstimateOverlapAgainstKeys(
    const SkipBloom& synopsis_a, const std::vector<std::string>& keys_b);

/// Ground-truth overlap coefficient |A ∩ B| / |B| over explicit key sets
/// (duplicates collapsed). Used by tests and the accuracy experiment
/// (Table 3) to measure estimation error.
double ExactOverlapCoefficient(const std::vector<std::string>& keys_a,
                               const std::vector<std::string>& keys_b);

/// Monte-Carlo sample size (epsilon^2 * theta)^-1 needed for relative error
/// `epsilon` when the true proportion is lower-bounded by `theta` (the paper
/// bounds theta at 0.05).
size_t RequiredSampleSize(double epsilon, double theta_lower_bound = 0.05);

}  // namespace sketchlink

#endif  // SKETCHLINK_CORE_OVERLAP_H_

#include "text/jaro.h"

#include <algorithm>
#include <vector>

namespace sketchlink::text {

double Jaro(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t len_a = a.size();
  const size_t len_b = b.size();
  const size_t window =
      std::max<size_t>(std::max(len_a, len_b) / 2, 1) - 1;

  std::vector<bool> matched_a(len_a, false);
  std::vector<bool> matched_b(len_b, false);

  size_t matches = 0;
  for (size_t i = 0; i < len_a; ++i) {
    const size_t lo = (i > window) ? i - window : 0;
    const size_t hi = std::min(i + window + 1, len_b);
    for (size_t j = lo; j < hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = true;
      matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < len_a; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(len_a) + m / static_cast<double>(len_b) +
          (m - static_cast<double>(transpositions / 2)) / m) /
         3.0;
}

double JaroWinkler(std::string_view a, std::string_view b,
                   double prefix_scale) {
  const double jaro = Jaro(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double JaroWinklerDistance(std::string_view a, std::string_view b) {
  return 1.0 - JaroWinkler(a, b);
}

}  // namespace sketchlink::text

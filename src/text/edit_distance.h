#ifndef SKETCHLINK_TEXT_EDIT_DISTANCE_H_
#define SKETCHLINK_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace sketchlink::text {

/// Classic Levenshtein distance (substitute/insert/delete, unit costs).
/// O(|a|*|b|) time, O(min(|a|,|b|)) space.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Banded Levenshtein with early exit: returns the exact distance if it is
/// <= `max_distance`, otherwise returns `max_distance + 1`. Runs in
/// O(max_distance * min(|a|,|b|)) time, which is what the matching phase
/// needs when it only cares whether a pair is within threshold theta.
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_distance);

/// Optimal string alignment (restricted Damerau-Levenshtein): Levenshtein
/// plus transposition of adjacent characters as a unit-cost operation. The
/// paper's perturbation model uses edit/delete/insert/transpose ops, so this
/// is the natural distance for its ground truth.
size_t DamerauOsa(std::string_view a, std::string_view b);

/// Normalized edit similarity in [0,1]: 1 - dist/max(|a|,|b|); 1 for two
/// empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Normalized edit distance in [0,1]: dist/max(|a|,|b|); 0 for two empty
/// strings. The routing metric behind KeyDistanceKind::kLevenshtein.
double NormalizedLevenshteinDistance(std::string_view a, std::string_view b);

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_EDIT_DISTANCE_H_

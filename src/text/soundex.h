#ifndef SKETCHLINK_TEXT_SOUNDEX_H_
#define SKETCHLINK_TEXT_SOUNDEX_H_

#include <string>
#include <string_view>

namespace sketchlink::text {

/// American Soundex code of `s` (letter + 3 digits, e.g. "ROBERT" -> "R163").
/// Non-alphabetic characters are ignored; an empty input yields "0000".
std::string Soundex(std::string_view s);

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_SOUNDEX_H_

#include "text/edit_distance.h"

#include <algorithm>
#include <string>
#include <vector>

namespace sketchlink::text {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter
  if (b.empty()) return a.size();

  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];  // D[i-1][j]
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_distance) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > max_distance) return max_distance + 1;
  if (b.empty()) return a.size();

  const size_t kInf = max_distance + 1;
  std::vector<size_t> row(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), max_distance); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    // Only cells within the diagonal band |i-j| <= max_distance can hold a
    // value <= max_distance.
    const size_t lo = (i > max_distance) ? i - max_distance : 1;
    const size_t hi = std::min(b.size(), i + max_distance);
    size_t diag = (lo > 1) ? row[lo - 1] : row[0];
    if (lo == 1) row[0] = (i <= max_distance) ? i : kInf;
    size_t row_min = kInf;
    size_t left = (lo > 1) ? kInf : row[0];
    for (size_t j = lo; j <= hi; ++j) {
      const size_t up = row[j];
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t v = std::min({left + 1, up + 1, diag + cost});
      v = std::min(v, kInf);
      row[j] = v;
      left = v;
      diag = up;
      row_min = std::min(row_min, v);
    }
    if (hi < b.size()) row[hi + 1] = kInf;  // seal the band edge
    if (row_min > max_distance) return kInf;  // the band can only grow
  }
  return std::min(row[b.size()], kInf);
}

size_t DamerauOsa(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;

  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> prev2(m + 1);
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t v = std::min({cur[j - 1] + 1, prev[j] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        v = std::min(v, prev2[j - 2] + 1);
      }
      cur[j] = v;
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(Levenshtein(a, b)) /
                   static_cast<double>(longest);
}

double NormalizedLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(Levenshtein(a, b)) /
         static_cast<double>(longest);
}

}  // namespace sketchlink::text

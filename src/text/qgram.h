#ifndef SKETCHLINK_TEXT_QGRAM_H_
#define SKETCHLINK_TEXT_QGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace sketchlink::text {

/// Extracts the multiset of q-grams of `s`. When `pad` is true the string is
/// wrapped with q-1 copies of '#' / '$' sentinels, so boundary characters
/// contribute as many grams as interior ones (the convention used when
/// building record-level Bloom filters for Hamming LSH; Schnell et al.).
std::vector<std::string> QGrams(std::string_view s, size_t q, bool pad = true);

/// Dice coefficient of the q-gram multisets of a and b:
/// 2*|A ∩ B| / (|A| + |B|). Returns 1 for two empty strings.
double QGramDice(std::string_view a, std::string_view b, size_t q = 2);

/// Jaccard coefficient of the q-gram sets (duplicates collapsed).
double QGramJaccard(std::string_view a, std::string_view b, size_t q = 2);

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_QGRAM_H_

#include "text/normalize.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace sketchlink::text {

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string NormalizeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  NormalizeFieldTo(s, &out);
  return out;
}

void NormalizeFieldTo(std::string_view s, std::string* out) {
  const size_t base = out->size();
  bool pending_space = false;
  for (char raw : Trim(s)) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      pending_space = out->size() > base;
      continue;
    }
    char up = static_cast<char>(std::toupper(c));
    const bool keep = (up >= 'A' && up <= 'Z') || (up >= '0' && up <= '9') ||
                      up == '\'' || up == '-';
    if (!keep) continue;
    if (pending_space) {
      out->push_back(' ');
      pending_space = false;
    }
    out->push_back(up);
  }
}

std::string_view Prefix(std::string_view s, size_t n) {
  return s.substr(0, std::min(n, s.size()));
}

std::string_view FractionPrefix(std::string_view s, double fraction) {
  if (fraction >= 1.0 || s.empty()) return s;
  if (fraction <= 0.0) return s.substr(0, 0);
  const size_t n = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(s.size())));
  return s.substr(0, std::max<size_t>(n, 1));
}

}  // namespace sketchlink::text

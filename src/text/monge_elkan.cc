#include "text/monge_elkan.h"

#include <algorithm>
#include <vector>

#include "text/jaro.h"

namespace sketchlink::text {

namespace {

std::vector<std::string_view> Tokenize(std::string_view s) {
  std::vector<std::string_view> tokens;
  size_t begin = 0;
  while (begin < s.size()) {
    while (begin < s.size() && s[begin] == ' ') ++begin;
    size_t end = begin;
    while (end < s.size() && s[end] != ' ') ++end;
    if (end > begin) tokens.push_back(s.substr(begin, end - begin));
    begin = end;
  }
  return tokens;
}

}  // namespace

double MongeElkan(std::string_view a, std::string_view b,
                  const TokenSimilarityFn& inner) {
  const auto tokens_a = Tokenize(a);
  const auto tokens_b = Tokenize(b);
  if (tokens_a.empty() && tokens_b.empty()) return 1.0;
  if (tokens_a.empty() || tokens_b.empty()) return 0.0;
  double total = 0.0;
  for (std::string_view token_a : tokens_a) {
    double best = 0.0;
    for (std::string_view token_b : tokens_b) {
      best = std::max(best, inner(token_a, token_b));
    }
    total += best;
  }
  return total / static_cast<double>(tokens_a.size());
}

double MongeElkanJaroWinkler(std::string_view a, std::string_view b) {
  return MongeElkan(a, b, [](std::string_view x, std::string_view y) {
    return JaroWinkler(x, y);
  });
}

double SymmetricMongeElkan(std::string_view a, std::string_view b,
                           const TokenSimilarityFn& inner) {
  return std::max(MongeElkan(a, b, inner), MongeElkan(b, a, inner));
}

}  // namespace sketchlink::text

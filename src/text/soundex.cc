#include "text/soundex.h"

#include <cctype>

namespace sketchlink::text {

namespace {

// Soundex digit for an uppercase letter; 0 means the letter is not coded
// (vowels and H/W/Y).
char SoundexDigit(char c) {
  switch (c) {
    case 'B': case 'F': case 'P': case 'V':
      return '1';
    case 'C': case 'G': case 'J': case 'K': case 'Q': case 'S': case 'X':
    case 'Z':
      return '2';
    case 'D': case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M': case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';
  }
}

}  // namespace

std::string Soundex(std::string_view s) {
  std::string letters;
  letters.reserve(s.size());
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) letters.push_back(static_cast<char>(std::toupper(c)));
  }
  if (letters.empty()) return "0000";

  std::string code(1, letters[0]);
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char c = letters[i];
    const char digit = SoundexDigit(c);
    // H and W are transparent: they do not reset the previous digit, so
    // letters with the same code separated by H/W are coded once.
    if (c == 'H' || c == 'W') continue;
    if (digit != '0' && digit != prev_digit) code.push_back(digit);
    prev_digit = digit;
  }
  code.append(4 - code.size(), '0');
  return code;
}

}  // namespace sketchlink::text

#ifndef SKETCHLINK_TEXT_DOUBLE_METAPHONE_H_
#define SKETCHLINK_TEXT_DOUBLE_METAPHONE_H_

#include <string>
#include <string_view>
#include <utility>

namespace sketchlink::text {

/// Primary and secondary phonetic codes produced by Double Metaphone.
/// When a word has no ambiguous pronunciation the two codes are equal.
struct MetaphoneCodes {
  std::string primary;
  std::string secondary;
};

/// Double Metaphone (Lawrence Philips, 2000): encodes a word into one or two
/// phonetic keys so that spelling variants of the same name collide
/// ("SMITH" and "SMYTH" both encode to "SM0"). This is the encoding the
/// INV baseline (Christen et al., CIKM'09) uses for its inverted-index
/// blocking keys.
///
/// `max_length` caps the emitted code length (the conventional value is 4).
MetaphoneCodes DoubleMetaphone(std::string_view word, size_t max_length = 4);

/// Convenience: primary code only.
std::string DoubleMetaphonePrimary(std::string_view word,
                                   size_t max_length = 4);

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_DOUBLE_METAPHONE_H_

#include "text/double_metaphone.h"

#include <cctype>
#include <initializer_list>

namespace sketchlink::text {

namespace {

// Working state for one encoding pass. The input is uppercased and padded
// with five spaces so lookahead never runs off the end (mirrors the layout
// of Philips' reference implementation).
class Encoder {
 public:
  Encoder(std::string_view word, size_t max_length)
      : max_length_(max_length) {
    word_.reserve(word.size() + 5);
    for (char raw : word) {
      unsigned char c = static_cast<unsigned char>(raw);
      if (std::isalpha(c)) word_.push_back(static_cast<char>(std::toupper(c)));
    }
    length_ = word_.size();
    word_.append(5, ' ');
  }

  MetaphoneCodes Encode();

 private:
  char At(size_t i) const { return i < word_.size() ? word_[i] : ' '; }

  bool IsVowel(size_t i) const {
    const char c = At(i);
    return c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U' ||
           c == 'Y';
  }

  // True if the substring of `length` starting at `start` equals any of the
  // candidate strings.
  bool StringAt(size_t start, size_t length,
                std::initializer_list<const char*> candidates) const {
    if (start > word_.size()) return false;
    const std::string_view window =
        std::string_view(word_).substr(start, length);
    for (const char* cand : candidates) {
      if (window == cand) return true;
    }
    return false;
  }

  bool SlavoGermanic() const {
    return word_.find('W') != std::string::npos ||
           word_.find('K') != std::string::npos ||
           word_.find("CZ") != std::string::npos ||
           word_.find("WITZ") != std::string::npos;
  }

  void Add(const char* primary, const char* secondary) {
    primary_ += primary;
    secondary_ += secondary;
  }
  void Add(const char* both) { Add(both, both); }

  bool Done() const {
    return primary_.size() >= max_length_ && secondary_.size() >= max_length_;
  }

  void HandleC(size_t& i);
  void HandleG(size_t& i);

  size_t max_length_;
  std::string word_;
  size_t length_ = 0;
  std::string primary_;
  std::string secondary_;
};

void Encoder::HandleC(size_t& i) {
  // Various Germanic "ACH" contexts -> K.
  if (i > 1 && !IsVowel(i - 2) && StringAt(i - 1, 3, {"ACH"}) &&
      (At(i + 2) != 'I' &&
       (At(i + 2) != 'E' || StringAt(i - 2, 6, {"BACHER", "MACHER"})))) {
    Add("K");
    i += 2;
    return;
  }
  // Special case "CAESAR".
  if (i == 0 && StringAt(i, 6, {"CAESAR"})) {
    Add("S");
    i += 2;
    return;
  }
  // Italian "CHIANTI".
  if (StringAt(i, 4, {"CHIA"})) {
    Add("K");
    i += 2;
    return;
  }
  if (StringAt(i, 2, {"CH"})) {
    // "MICHAEL"
    if (i > 0 && StringAt(i, 4, {"CHAE"})) {
      Add("K", "X");
      i += 2;
      return;
    }
    // Greek roots at word start, e.g. "CHARACTER", "CHORUS".
    if (i == 0 &&
        (StringAt(i + 1, 5, {"HARAC", "HARIS"}) ||
         StringAt(i + 1, 3, {"HOR", "HYM", "HIA", "HEM"})) &&
        !StringAt(0, 5, {"CHORE"})) {
      Add("K");
      i += 2;
      return;
    }
    // Germanic/Greek "CH" -> K ("ORCHESTRA", "ARCHITECT", but not "ARCHER").
    if ((StringAt(0, 4, {"VAN ", "VON "}) || StringAt(0, 3, {"SCH"})) ||
        StringAt(i == 0 ? 0 : i - 2, 6,
                 {"ORCHES", "ARCHIT", "ORCHID"}) ||
        StringAt(i + 2, 1, {"T", "S"}) ||
        ((StringAt(i == 0 ? 0 : i - 1, 1, {"A", "O", "U", "E"}) || i == 0) &&
         StringAt(i + 2, 1,
                  {"L", "R", "N", "M", "B", "H", "F", "V", "W", " "}))) {
      Add("K");
    } else {
      if (i > 0) {
        if (StringAt(0, 2, {"MC"})) {
          Add("K");
        } else {
          Add("X", "K");
        }
      } else {
        Add("X");
      }
    }
    i += 2;
    return;
  }
  // "CZERNY" -> S (X secondary).
  if (StringAt(i, 2, {"CZ"}) &&
      !(i >= 2 && StringAt(i - 2, 4, {"WICZ"}))) {
    Add("S", "X");
    i += 2;
    return;
  }
  // "FOCACCIA".
  if (StringAt(i + 1, 3, {"CIA"})) {
    Add("X");
    i += 3;
    return;
  }
  // Double C, but not "MCCLELLAN".
  if (StringAt(i, 2, {"CC"}) && !(i == 1 && At(0) == 'M')) {
    // "BELLOCCHIO" but not "BACCHUS".
    if (StringAt(i + 2, 1, {"I", "E", "H"}) &&
        !StringAt(i + 2, 2, {"HU"})) {
      // "ACCIDENT", "ACCEDE", "SUCCEED".
      if ((i == 1 && At(i - 1) == 'A') ||
          StringAt(i == 0 ? 0 : i - 1, 5, {"UCCEE", "UCCES"})) {
        Add("KS");
      } else {
        // "BACCI", "BERTUCCI": Italian pronunciation.
        Add("X");
      }
      i += 3;
      return;
    }
    // Pierce's rule.
    Add("K");
    i += 2;
    return;
  }
  if (StringAt(i, 2, {"CK", "CG", "CQ"})) {
    Add("K");
    i += 2;
    return;
  }
  if (StringAt(i, 2, {"CI", "CE", "CY"})) {
    // Italian vs. English.
    if (StringAt(i, 3, {"CIO", "CIE", "CIA"})) {
      Add("S", "X");
    } else {
      Add("S");
    }
    i += 2;
    return;
  }
  Add("K");
  // "MAC CAFFREY", "MAC GREGOR".
  if (StringAt(i + 1, 2, {" C", " Q", " G"})) {
    i += 3;
  } else if (StringAt(i + 1, 1, {"C", "K", "Q"}) &&
             !StringAt(i + 1, 2, {"CE", "CI"})) {
    i += 2;
  } else {
    i += 1;
  }
}

void Encoder::HandleG(size_t& i) {
  if (At(i + 1) == 'H') {
    if (i > 0 && !IsVowel(i - 1)) {
      Add("K");
      i += 2;
      return;
    }
    if (i == 0) {
      // "GHISLANE", "GHIRADELLI".
      if (At(i + 2) == 'I') {
        Add("J");
      } else {
        Add("K");
      }
      i += 2;
      return;
    }
    // Parker's rule (with some further refinements): e.g. "HUGH".
    if ((i > 1 && StringAt(i - 2, 1, {"B", "H", "D"})) ||
        (i > 2 && StringAt(i - 3, 1, {"B", "H", "D"})) ||
        (i > 3 && StringAt(i - 4, 1, {"B", "H"}))) {
      i += 2;
      return;
    }
    // "LAUGH", "MCLAUGHLIN", "COUGH", "GOUGH", "ROUGH", "TOUGH".
    if (i > 2 && At(i - 1) == 'U' &&
        StringAt(i - 3, 1, {"C", "G", "L", "R", "T"})) {
      Add("F");
    } else if (i > 0 && At(i - 1) != 'I') {
      Add("K");
    }
    i += 2;
    return;
  }
  if (At(i + 1) == 'N') {
    if (i == 1 && IsVowel(0) && !SlavoGermanic()) {
      Add("KN", "N");
    } else if (!StringAt(i + 2, 2, {"EY"}) && At(i + 1) != 'Y' &&
               !SlavoGermanic()) {
      // Not e.g. "CAGNEY".
      Add("N", "KN");
    } else {
      Add("KN");
    }
    i += 2;
    return;
  }
  // "TAGLIARO".
  if (StringAt(i + 1, 2, {"LI"}) && !SlavoGermanic()) {
    Add("KL", "L");
    i += 2;
    return;
  }
  // -ges-, -gep-, -gel- at start.
  if (i == 0 && (At(i + 1) == 'Y' ||
                 StringAt(i + 1, 2,
                          {"ES", "EP", "EB", "EL", "EY", "IB", "IL", "IN",
                           "IE", "EI", "ER"}))) {
    Add("K", "J");
    i += 2;
    return;
  }
  // -ger-, -gy-.
  if ((StringAt(i + 1, 2, {"ER"}) || At(i + 1) == 'Y') &&
      !StringAt(0, 6, {"DANGER", "RANGER", "MANGER"}) &&
      !(i > 0 && StringAt(i - 1, 1, {"E", "I"})) &&
      !(i > 0 && StringAt(i - 1, 3, {"RGY", "OGY"}))) {
    Add("K", "J");
    i += 2;
    return;
  }
  // Italian "BIAGGI".
  if (StringAt(i + 1, 1, {"E", "I", "Y"}) ||
      (i > 0 && StringAt(i - 1, 4, {"AGGI", "OGGI"}))) {
    // Germanic.
    if (StringAt(0, 4, {"VAN ", "VON "}) || StringAt(0, 3, {"SCH"}) ||
        StringAt(i + 1, 2, {"ET"})) {
      Add("K");
    } else if (StringAt(i + 1, 4, {"IER "})) {
      // Always soft if French ending.
      Add("J");
    } else {
      Add("J", "K");
    }
    i += 2;
    return;
  }
  if (At(i + 1) == 'G') {
    i += 2;
  } else {
    i += 1;
  }
  Add("K");
}

MetaphoneCodes Encoder::Encode() {
  size_t i = 0;

  // Skip silent first letters: "GN", "KN", "PN", "WR", "PS".
  if (StringAt(0, 2, {"GN", "KN", "PN", "WR", "PS"})) i = 1;

  // Initial 'X' is pronounced 'Z' (e.g. "XAVIER") -> S.
  if (At(0) == 'X') {
    Add("S");
    i = 1;
  }

  while (i < length_ && !Done()) {
    const char c = At(i);
    switch (c) {
      case 'A': case 'E': case 'I': case 'O': case 'U': case 'Y':
        if (i == 0) Add("A");  // all initial vowels map to A
        i += 1;
        break;
      case 'B':
        Add("P");
        i += (At(i + 1) == 'B') ? 2 : 1;
        break;
      case 'C':
        HandleC(i);
        break;
      case 'D':
        if (StringAt(i, 2, {"DG"})) {
          if (StringAt(i + 2, 1, {"I", "E", "Y"})) {
            // "EDGE" -> J.
            Add("J");
            i += 3;
          } else {
            // "EDGAR" -> TK.
            Add("TK");
            i += 2;
          }
          break;
        }
        if (StringAt(i, 2, {"DT", "DD"})) {
          Add("T");
          i += 2;
          break;
        }
        Add("T");
        i += 1;
        break;
      case 'F':
        Add("F");
        i += (At(i + 1) == 'F') ? 2 : 1;
        break;
      case 'G':
        HandleG(i);
        break;
      case 'H':
        // Only keep H between vowels or at start before a vowel.
        if ((i == 0 || IsVowel(i - 1)) && IsVowel(i + 1)) {
          Add("H");
          i += 2;
        } else {
          i += 1;
        }
        break;
      case 'J':
        // "JOSE", "SAN JACINTO".
        if (StringAt(i, 4, {"JOSE"}) || StringAt(0, 4, {"SAN "})) {
          if ((i == 0 && At(i + 4) == ' ') || StringAt(0, 4, {"SAN "})) {
            Add("H");
          } else {
            Add("J", "H");
          }
          i += 1;
          break;
        }
        if (i == 0 && !StringAt(i, 4, {"JOSE"})) {
          Add("J", "A");  // "YANKELOVICH" vs "JANKELOWICZ"
        } else if (IsVowel(i == 0 ? 0 : i - 1) && !SlavoGermanic() &&
                   (At(i + 1) == 'A' || At(i + 1) == 'O')) {
          Add("J", "H");
        } else if (i == length_ - 1) {
          Add("J", "");
        } else if (!StringAt(i + 1, 1,
                             {"L", "T", "K", "S", "N", "M", "B", "Z"}) &&
                   !(i > 0 && StringAt(i - 1, 1, {"S", "K", "L"}))) {
          Add("J");
        }
        i += (At(i + 1) == 'J') ? 2 : 1;
        break;
      case 'K':
        Add("K");
        i += (At(i + 1) == 'K') ? 2 : 1;
        break;
      case 'L':
        if (At(i + 1) == 'L') {
          // Spanish "CABRILLO", "GALLEGOS".
          if ((i == length_ - 3 &&
               StringAt(i - 1, 4, {"ILLO", "ILLA", "ALLE"})) ||
              ((StringAt(length_ >= 2 ? length_ - 2 : 0, 2, {"AS", "OS"}) ||
                StringAt(length_ >= 1 ? length_ - 1 : 0, 1, {"A", "O"})) &&
               i > 0 && StringAt(i - 1, 4, {"ALLE"}))) {
            Add("L", "");
            i += 2;
            break;
          }
          i += 2;
        } else {
          i += 1;
        }
        Add("L");
        break;
      case 'M':
        // "DUMB", "THUMB": silent B handled at B, silent M doubling here.
        if ((i > 0 && StringAt(i - 1, 3, {"UMB"}) &&
             (i + 1 == length_ - 1 || StringAt(i + 2, 2, {"ER"}))) ||
            At(i + 1) == 'M') {
          i += 2;
        } else {
          i += 1;
        }
        Add("M");
        break;
      case 'N':
        Add("N");
        i += (At(i + 1) == 'N') ? 2 : 1;
        break;
      case 'P':
        if (At(i + 1) == 'H') {
          Add("F");
          i += 2;
          break;
        }
        // "CAMPBELL", "RASPBERRY".
        Add("P");
        i += StringAt(i + 1, 1, {"P", "B"}) ? 2 : 1;
        break;
      case 'Q':
        Add("K");
        i += (At(i + 1) == 'Q') ? 2 : 1;
        break;
      case 'R':
        // French "ROGIER" final silent R kept in secondary.
        if (i == length_ - 1 && !SlavoGermanic() && i > 1 &&
            StringAt(i - 2, 2, {"IE"}) &&
            !(i >= 4 && StringAt(i - 4, 2, {"ME", "MA"}))) {
          Add("", "R");
        } else {
          Add("R");
        }
        i += (At(i + 1) == 'R') ? 2 : 1;
        break;
      case 'S':
        // Silent S in "ISLAND", "CARLISLE".
        if (i > 0 && StringAt(i - 1, 3, {"ISL", "YSL"})) {
          i += 1;
          break;
        }
        // "SUGAR" special case.
        if (i == 0 && StringAt(i, 5, {"SUGAR"})) {
          Add("X", "S");
          i += 1;
          break;
        }
        if (StringAt(i, 2, {"SH"})) {
          // Germanic "SHOLZ".
          if (StringAt(i + 1, 4, {"HEIM", "HOEK", "HOLM", "HOLZ"})) {
            Add("S");
          } else {
            Add("X");
          }
          i += 2;
          break;
        }
        // Italian & Armenian "SIO"/"SIA".
        if (StringAt(i, 3, {"SIO", "SIA"}) || StringAt(i, 4, {"SIAN"})) {
          if (!SlavoGermanic()) {
            Add("S", "X");
          } else {
            Add("S");
          }
          i += 3;
          break;
        }
        // German-origin initial S+consonant ("SMITH" -> XMT secondary), and
        // "SZ" (Hungarian).
        if ((i == 0 && StringAt(i + 1, 1, {"M", "N", "L", "W"})) ||
            StringAt(i + 1, 1, {"Z"})) {
          Add("S", "X");
          i += StringAt(i + 1, 1, {"Z"}) ? 2 : 1;
          break;
        }
        if (StringAt(i, 2, {"SC"})) {
          // Schlesinger's rule.
          if (At(i + 2) == 'H') {
            // Dutch origin "SCHOOL", "SCHOONER".
            if (StringAt(i + 3, 2, {"OO", "ER", "EN", "UY", "ED", "EM"})) {
              // "SCHERMERHORN", "SCHENKER".
              if (StringAt(i + 3, 2, {"ER", "EN"})) {
                Add("X", "SK");
              } else {
                Add("SK");
              }
              i += 3;
              break;
            }
            if (i == 0 && !IsVowel(3) && At(3) != 'W') {
              Add("X", "S");
            } else {
              Add("X");
            }
            i += 3;
            break;
          }
          if (StringAt(i + 2, 1, {"I", "E", "Y"})) {
            Add("S");
            i += 3;
            break;
          }
          Add("SK");
          i += 3;
          break;
        }
        // French "RESNAIS", "ARTOIS": final silent S.
        if (i == length_ - 1 && i > 1 && StringAt(i - 2, 2, {"AI", "OI"})) {
          Add("", "S");
        } else {
          Add("S");
        }
        i += StringAt(i + 1, 1, {"S", "Z"}) ? 2 : 1;
        break;
      case 'T':
        if (StringAt(i, 4, {"TION"}) || StringAt(i, 3, {"TIA", "TCH"})) {
          Add("X");
          i += 3;
          break;
        }
        if (StringAt(i, 2, {"TH"}) || StringAt(i, 3, {"TTH"})) {
          // Germanic "THOMAS", "THAMES".
          if (StringAt(i + 2, 2, {"OM", "AM"}) ||
              StringAt(0, 4, {"VAN ", "VON "}) || StringAt(0, 3, {"SCH"})) {
            Add("T");
          } else {
            Add("0", "T");  // '0' encodes the theta sound
          }
          i += 2;
          break;
        }
        Add("T");
        i += StringAt(i + 1, 1, {"T", "D"}) ? 2 : 1;
        break;
      case 'V':
        Add("F");
        i += (At(i + 1) == 'V') ? 2 : 1;
        break;
      case 'W':
        // "WR" always becomes R.
        if (StringAt(i, 2, {"WR"})) {
          Add("R");
          i += 2;
          break;
        }
        if (i == 0 && (IsVowel(i + 1) || StringAt(i, 2, {"WH"}))) {
          if (IsVowel(i + 1)) {
            // "WASSERMAN" -> A, secondary F.
            Add("A", "F");
          } else {
            // "WHIRLPOOL".
            Add("A");
          }
          i += 1;
          break;
        }
        // "ARNOW" -> secondary F.
        if ((i == length_ - 1 && i > 0 && IsVowel(i - 1)) ||
            (i > 0 &&
             StringAt(i - 1, 5, {"EWSKI", "EWSKY", "OWSKI", "OWSKY"})) ||
            StringAt(0, 3, {"SCH"})) {
          Add("", "F");
          i += 1;
          break;
        }
        // Polish "FILIPOWICZ".
        if (StringAt(i, 4, {"WICZ", "WITZ"})) {
          Add("TS", "FX");
          i += 4;
          break;
        }
        i += 1;  // otherwise silent
        break;
      case 'X':
        // French final "BREAUX" silent X.
        if (!(i == length_ - 1 && i >= 3 &&
              (StringAt(i - 3, 3, {"IAU", "EAU"}) ||
               StringAt(i - 2, 2, {"AU", "OU"})))) {
          Add("KS");
        }
        i += StringAt(i + 1, 1, {"C", "X"}) ? 2 : 1;
        break;
      case 'Z':
        // Chinese pinyin "ZHAO".
        if (At(i + 1) == 'H') {
          Add("J");
          i += 2;
          break;
        }
        if (StringAt(i + 1, 2, {"ZO", "ZI", "ZA"}) ||
            (SlavoGermanic() && i > 0 && At(i - 1) != 'T')) {
          Add("S", "TS");
        } else {
          Add("S");
        }
        i += (At(i + 1) == 'Z') ? 2 : 1;
        break;
      default:
        i += 1;
        break;
    }
  }

  MetaphoneCodes codes;
  codes.primary = primary_.substr(0, max_length_);
  codes.secondary = secondary_.substr(0, max_length_);
  return codes;
}

}  // namespace

MetaphoneCodes DoubleMetaphone(std::string_view word, size_t max_length) {
  Encoder encoder(word, max_length);
  return encoder.Encode();
}

std::string DoubleMetaphonePrimary(std::string_view word, size_t max_length) {
  return DoubleMetaphone(word, max_length).primary;
}

}  // namespace sketchlink::text

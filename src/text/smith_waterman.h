#ifndef SKETCHLINK_TEXT_SMITH_WATERMAN_H_
#define SKETCHLINK_TEXT_SMITH_WATERMAN_H_

#include <cstddef>
#include <string_view>

namespace sketchlink::text {

/// Scoring scheme for Smith-Waterman local alignment. Defaults follow the
/// record-linkage convention (match +2, mismatch -1, gap -1).
struct SwScores {
  int match = 2;
  int mismatch = -1;
  int gap = -1;
};

/// Smith-Waterman local alignment score: the best-scoring pair of substrings
/// under the scheme. O(|a|*|b|) time, O(min) space. Robust to leading/
/// trailing junk ("DR JOHN SMITH MD" vs "JOHN SMITH"), where edit distance
/// and Jaro-Winkler both suffer.
int SmithWaterman(std::string_view a, std::string_view b,
                  const SwScores& scores = SwScores());

/// Normalized Smith-Waterman similarity in [0, 1]: score divided by the
/// best achievable score for the shorter string (all-match).
double SmithWatermanSimilarity(std::string_view a, std::string_view b,
                               const SwScores& scores = SwScores());

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_SMITH_WATERMAN_H_

#ifndef SKETCHLINK_TEXT_JARO_H_
#define SKETCHLINK_TEXT_JARO_H_

#include <string_view>

namespace sketchlink::text {

/// Jaro similarity in [0, 1]. Counts matching characters within a sliding
/// window of half the longer string, then discounts transpositions.
double Jaro(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix, scaled by `prefix_scale` (standard 0.1). This is the similarity
/// function used throughout the paper's evaluation (threshold 0.75).
double JaroWinkler(std::string_view a, std::string_view b,
                   double prefix_scale = 0.1);

/// Jaro-Winkler distance = 1 - JaroWinkler. The paper's sub-block rings use
/// distances, so BlockSketch consumes this form.
double JaroWinklerDistance(std::string_view a, std::string_view b);

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_JARO_H_

#ifndef SKETCHLINK_TEXT_MONGE_ELKAN_H_
#define SKETCHLINK_TEXT_MONGE_ELKAN_H_

#include <functional>
#include <string_view>

namespace sketchlink::text {

/// Inner similarity used by Monge-Elkan (token-level, in [0,1]).
using TokenSimilarityFn =
    std::function<double(std::string_view, std::string_view)>;

/// Monge-Elkan similarity: tokenizes both strings on whitespace and scores
/// each token of `a` by its best match among `b`'s tokens, averaging the
/// maxima. Robust to token reordering ("JOHNSON JAMES" vs "JAMES JOHNSON"),
/// which plain Jaro-Winkler punishes — exactly the shape of multi-author
/// DBLP strings and "SURNAME, GIVEN" conventions.
///
/// Note the measure is asymmetric; use SymmetricMongeElkan when both
/// directions matter.
double MongeElkan(std::string_view a, std::string_view b,
                  const TokenSimilarityFn& inner);

/// Monge-Elkan with Jaro-Winkler as the inner similarity.
double MongeElkanJaroWinkler(std::string_view a, std::string_view b);

/// max(ME(a,b), ME(b,a)) — the common symmetric variant.
double SymmetricMongeElkan(std::string_view a, std::string_view b,
                           const TokenSimilarityFn& inner);

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_MONGE_ELKAN_H_

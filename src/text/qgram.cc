#include "text/qgram.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace sketchlink::text {

std::vector<std::string> QGrams(std::string_view s, size_t q, bool pad) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  std::string padded;
  if (pad) {
    padded.assign(q - 1, '#');
    padded.append(s);
    padded.append(q - 1, '$');
  } else {
    padded.assign(s);
  }
  if (padded.size() < q) {
    if (!padded.empty()) grams.push_back(padded);
    return grams;
  }
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, q));
  }
  return grams;
}

double QGramDice(std::string_view a, std::string_view b, size_t q) {
  const auto ga = QGrams(a, q);
  const auto gb = QGrams(b, q);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;

  std::unordered_map<std::string, size_t> counts;
  for (const auto& g : ga) ++counts[g];
  size_t common = 0;
  for (const auto& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++common;
    }
  }
  return 2.0 * static_cast<double>(common) /
         static_cast<double>(ga.size() + gb.size());
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  const auto ga = QGrams(a, q);
  const auto gb = QGrams(b, q);
  std::unordered_set<std::string> sa(ga.begin(), ga.end());
  std::unordered_set<std::string> sb(gb.begin(), gb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t common = 0;
  for (const auto& g : sa) {
    common += sb.count(g);
  }
  const size_t uni = sa.size() + sb.size() - common;
  return uni == 0 ? 1.0
                  : static_cast<double>(common) / static_cast<double>(uni);
}

}  // namespace sketchlink::text

#include "text/smith_waterman.h"

#include <algorithm>
#include <vector>

namespace sketchlink::text {

int SmithWaterman(std::string_view a, std::string_view b,
                  const SwScores& scores) {
  if (a.empty() || b.empty()) return 0;
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter: O(|b|) space

  std::vector<int> row(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    int diag = 0;  // H[i-1][j-1]
    for (size_t j = 1; j <= b.size(); ++j) {
      const int up = row[j];
      const int score_sub =
          diag + (a[i - 1] == b[j - 1] ? scores.match : scores.mismatch);
      int h = std::max({0, score_sub, up + scores.gap,
                        row[j - 1] + scores.gap});
      row[j] = h;
      diag = up;
      best = std::max(best, h);
    }
  }
  return best;
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b,
                               const SwScores& scores) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t shorter = std::min(a.size(), b.size());
  if (shorter == 0) return 0.0;
  const double ceiling =
      static_cast<double>(scores.match) * static_cast<double>(shorter);
  if (ceiling <= 0) return 0.0;
  return static_cast<double>(SmithWaterman(a, b, scores)) / ceiling;
}

}  // namespace sketchlink::text

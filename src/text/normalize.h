#ifndef SKETCHLINK_TEXT_NORMALIZE_H_
#define SKETCHLINK_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace sketchlink::text {

/// ASCII-uppercases `s` in place-semantics (returns a copy).
std::string ToUpperAscii(std::string_view s);

/// ASCII-lowercases `s`.
std::string ToLowerAscii(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Canonical field normalization applied before blocking and matching:
/// trim, uppercase, collapse runs of whitespace to single spaces, and drop
/// characters outside [A-Z0-9 '-]. Mirrors the preprocessing every record
/// linkage pipeline applies before key generation.
std::string NormalizeField(std::string_view s);

/// Appends NormalizeField(s) to `*out` without a temporary string, so a
/// reused buffer makes repeated normalization allocation-free once warm.
/// Byte-for-byte identical to the returning form.
void NormalizeFieldTo(std::string_view s, std::string* out);

/// Returns the first `n` characters of `s` (the whole string if shorter).
/// Blocking keys such as "surname[50%]" and "assay[6]" (paper Table 1) are
/// built from prefixes.
std::string_view Prefix(std::string_view s, size_t n);

/// Returns the first ceil(fraction * size) characters; fraction in (0, 1].
/// Implements the paper's "field[50%]" blocking-key notation.
std::string_view FractionPrefix(std::string_view s, double fraction);

}  // namespace sketchlink::text

#endif  // SKETCHLINK_TEXT_NORMALIZE_H_

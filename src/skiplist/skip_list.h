#ifndef SKETCHLINK_SKIPLIST_SKIP_LIST_H_
#define SKETCHLINK_SKIPLIST_SKIP_LIST_H_

#include <cassert>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/random.h"

namespace sketchlink {

/// Probabilistic ordered map (W. Pugh, CACM 1990; paper Sec. 3.1): a tower of
/// linked lists where each inserted key joins level l+1 with probability 1/2
/// (fair coin toss), giving O(log n) expected search, insert and
/// less-or-equal lookup. The base level holds all keys in sorted order.
///
/// Two of this library's components sit on top of it:
///  - SkipBloom stores its Bernoulli-sampled blocking keys here and needs
///    FindLessOrEqual ("alphabetically the nearest key from the left").
///  - The key/value store's memtable needs ordered iteration for flushes.
///
/// Not thread-safe; callers serialize access.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class SkipList {
 public:
  struct Node {
    Key key;
    Value value;
    // next_[l] links to the following node at level l; size() is the node's
    // height.
    std::vector<Node*> next_;

    Node(Key k, Value v, int height)
        : key(std::move(k)), value(std::move(v)), next_(height, nullptr) {}
  };

  explicit SkipList(uint64_t seed = 0xdecafULL, Compare cmp = Compare())
      : cmp_(cmp), rng_(seed), head_(Key(), Value(), kMaxHeight) {}

  ~SkipList() { Clear(); }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key`; if it already exists, overwrites its value. Returns the
  /// node holding the key.
  Node* InsertOrAssign(const Key& key, Value value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && Equal(node->key, key)) {
      node->value = std::move(value);
      return node;
    }
    const int height = RandomHeight();
    if (height > current_height_) {
      for (int l = current_height_; l < height; ++l) prev[l] = &head_;
      current_height_ = height;
    }
    Node* fresh = new Node(key, std::move(value), height);
    for (int l = 0; l < height; ++l) {
      fresh->next_[l] = prev[l]->next_[l];
      prev[l]->next_[l] = fresh;
    }
    ++size_;
    return fresh;
  }

  /// Returns the node with exactly `key`, or nullptr.
  Node* Find(const Key& key) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    return (node != nullptr && Equal(node->key, key)) ? node : nullptr;
  }

  /// Returns true if `key` is present.
  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Returns the node with the greatest key <= `key`, or nullptr when every
  /// stored key is greater (i.e. `key` precedes the whole list). This is the
  /// skip-list query SkipBloom issues to locate a blocking key's target
  /// block.
  Node* FindLessOrEqual(const Key& key) const {
    Node* x = const_cast<Node*>(&head_);
    for (int level = current_height_ - 1; level >= 0; --level) {
      while (x->next_[level] != nullptr &&
             !cmp_(key, x->next_[level]->key)) {  // next->key <= key
        x = x->next_[level];
      }
    }
    return (x == &head_) ? nullptr : x;
  }

  /// First node in key order, or nullptr when empty.
  Node* First() const { return head_.next_[0]; }

  /// Number of stored keys.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Current tower height.
  int height() const { return current_height_; }

  /// Removes every node.
  void Clear() {
    Node* x = head_.next_[0];
    while (x != nullptr) {
      Node* next = x->next_[0];
      delete x;
      x = next;
    }
    for (int l = 0; l < kMaxHeight; ++l) head_.next_[l] = nullptr;
    current_height_ = 1;
    size_ = 0;
  }

  /// Bytes consumed by the node structures (excluding heap owned by Key and
  /// Value payloads, which callers account separately).
  size_t ApproximateNodeMemory() const {
    size_t bytes = sizeof(*this);
    for (Node* x = head_.next_[0]; x != nullptr; x = x->next_[0]) {
      bytes += sizeof(Node) + x->next_.capacity() * sizeof(Node*);
    }
    return bytes;
  }

  /// Forward iterator over the base level (sorted order).
  class Iterator {
   public:
    explicit Iterator(const SkipList* list)
        : list_(list), node_(list->head_.next_[0]) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    const Value& value() const {
      assert(Valid());
      return node_->value;
    }
    Value& mutable_value() {
      assert(Valid());
      return node_->value;
    }
    void Next() {
      assert(Valid());
      node_ = node_->next_[0];
    }
    /// Positions at the first node with key >= `target`.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_.next_[0]; }

   private:
    const SkipList* list_;
    Node* node_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  static constexpr int kMaxHeight = 20;

  bool Equal(const Key& a, const Key& b) const {
    return !cmp_(a, b) && !cmp_(b, a);
  }

  // Fair coin toss per level (paper Sec. 3.1 footnote: keep adding levels
  // while tails comes up).
  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rng_.CoinFlip()) ++height;
    return height;
  }

  // Returns the first node >= key; fills prev[l] with the rightmost node
  // < key at each level when `prev` is non-null.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = const_cast<Node*>(&head_);
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (x->next_[level] != nullptr && cmp_(x->next_[level]->key, key)) {
        x = x->next_[level];
      }
      if (prev != nullptr) prev[level] = x;
    }
    return x->next_[0];
  }

  Compare cmp_;
  mutable Rng rng_;
  Node head_;
  int current_height_ = 1;
  size_t size_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_SKIPLIST_SKIP_LIST_H_

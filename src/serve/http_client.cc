#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/http_message.h"

namespace sketchlink::serve {

ClientConnection::ClientConnection(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {}

ClientConnection::~ClientConnection() { Close(); }

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

Status ClientConnection::Connect() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host (numeric IPv4 only): " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError("connect " + host_ + ":" + std::to_string(port_) +
                        ": " + std::strerror(errno));
    Close();
    return status;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status ClientConnection::SendRequest(const std::string& method,
                                     const std::string& path,
                                     const std::string& body,
                                     const HeaderList& headers,
                                     uint64_t timeout_ms) {
  std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nContent-Length: " + std::to_string(body.size()) +
                        "\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  request += body;
  if (!obs::SendAllWithTimeout(fd_, request.data(), request.size(),
                               timeout_ms)) {
    return Status::IOError("send failed");
  }
  return Status::OK();
}

Result<HttpResult> ClientConnection::ReadResponse(uint64_t timeout_ms,
                                                  bool* server_closed) {
  *server_closed = false;
  std::string raw = std::move(pending_);
  pending_.clear();
  char buf[8192];

  // Head.
  size_t head_end;
  while ((head_end = raw.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = obs::RecvWithTimeout(fd_, buf, sizeof(buf), timeout_ms);
    if (n == -2) return Status::IOError("response timeout");
    if (n == 0) {
      *server_closed = true;
      return Status::IOError("connection closed by server");
    }
    if (n < 0) return Status::IOError("recv failed");
    raw.append(buf, static_cast<size_t>(n));
  }

  HttpResult result;
  if (raw.rfind("HTTP/", 0) != 0) {
    return Status::IOError("malformed HTTP response");
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 1 >= head_end) {
    return Status::IOError("malformed status line");
  }
  result.status = std::atoi(raw.c_str() + sp + 1);

  // Content-Length (the serving plane always sends one) + Connection.
  size_t content_length = 0;
  bool close_after = false;
  {
    size_t pos = raw.find("\r\n") + 2;
    while (pos < head_end) {
      size_t eol = raw.find("\r\n", pos);
      if (eol == std::string::npos || eol > head_end) eol = head_end;
      std::string line = raw.substr(pos, eol - pos);
      for (char& c : line) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (line.rfind("content-length:", 0) == 0) {
        content_length = static_cast<size_t>(
            std::strtoull(line.c_str() + 15, nullptr, 10));
      } else if (line.rfind("connection:", 0) == 0 &&
                 line.find("close") != std::string::npos) {
        close_after = true;
      }
      pos = eol + 2;
    }
  }

  // Body.
  const size_t body_start = head_end + 4;
  while (raw.size() < body_start + content_length) {
    const ssize_t n = obs::RecvWithTimeout(fd_, buf, sizeof(buf), timeout_ms);
    if (n == -2) return Status::IOError("response body timeout");
    if (n == 0) {
      *server_closed = true;
      return Status::IOError("connection closed mid-body");
    }
    if (n < 0) return Status::IOError("recv failed");
    raw.append(buf, static_cast<size_t>(n));
  }
  result.body = raw.substr(body_start, content_length);
  pending_ = raw.substr(body_start + content_length);

  if (close_after) {
    Close();
  }
  return result;
}

Result<HttpResult> ClientConnection::RoundTrip(const std::string& method,
                                               const std::string& path,
                                               const std::string& body,
                                               const HeaderList& headers,
                                               uint64_t timeout_ms) {
  // Up to one transparent reconnect: a keep-alive connection the server
  // idled out looks like send-success + immediate EOF, so retrying on a
  // fresh connection is safe for our idempotent-or-new request.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      SKETCHLINK_RETURN_IF_ERROR(Connect());
    }
    const Status sent = SendRequest(method, path, body, headers, timeout_ms);
    if (!sent.ok()) {
      Close();
      if (attempt == 0) continue;
      return sent;
    }
    bool server_closed = false;
    Result<HttpResult> result = ReadResponse(timeout_ms, &server_closed);
    if (result.ok()) return result;
    Close();
    if (server_closed && attempt == 0) continue;
    return result.status();
  }
  return Status::Internal("unreachable");
}

Result<HttpResult> Fetch(const std::string& host, uint16_t port,
                         const std::string& method, const std::string& path,
                         const std::string& body, const HeaderList& headers,
                         uint64_t timeout_ms) {
  ClientConnection conn(host, port);
  HeaderList with_close = headers;
  with_close.emplace_back("Connection", "close");
  return conn.RoundTrip(method, path, body, with_close, timeout_ms);
}

}  // namespace sketchlink::serve

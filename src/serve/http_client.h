#ifndef SKETCHLINK_SERVE_HTTP_CLIENT_H_
#define SKETCHLINK_SERVE_HTTP_CLIENT_H_

// Minimal HTTP/1.1 client for the service plane: request bodies, arbitrary
// methods, and keep-alive connection reuse (obs::HttpGet is GET-only and
// reconnects per call). Used by the load bench, the API smoke tool, and the
// serving tests. Numeric IPv4 hosts only, like the rest of the tree.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sketchlink::serve {

struct HttpResult {
  int status = 0;
  std::string body;
};

using HeaderList = std::vector<std::pair<std::string, std::string>>;

/// Persistent keep-alive connection. Not thread-safe; one per client
/// thread. RoundTrip reconnects transparently when the server closed the
/// connection between requests (idle timeout, drain).
class ClientConnection {
 public:
  ClientConnection(std::string host, uint16_t port);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Sends one request and reads the full response. Transport errors are
  /// non-OK; HTTP error statuses are OK results (the caller inspects
  /// status). `timeout_ms` bounds each socket wait (0 = forever).
  Result<HttpResult> RoundTrip(const std::string& method,
                               const std::string& path,
                               const std::string& body = "",
                               const HeaderList& headers = {},
                               uint64_t timeout_ms = 5'000);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Status Connect();
  Status SendRequest(const std::string& method, const std::string& path,
                     const std::string& body, const HeaderList& headers,
                     uint64_t timeout_ms);
  Result<HttpResult> ReadResponse(uint64_t timeout_ms, bool* server_closed);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::string pending_;  // bytes past the previous response (rare)
};

/// One-shot convenience: fresh connection, one request, close.
Result<HttpResult> Fetch(const std::string& host, uint16_t port,
                         const std::string& method, const std::string& path,
                         const std::string& body = "",
                         const HeaderList& headers = {},
                         uint64_t timeout_ms = 5'000);

}  // namespace sketchlink::serve

#endif  // SKETCHLINK_SERVE_HTTP_CLIENT_H_

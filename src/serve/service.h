#ifndef SKETCHLINK_SERVE_SERVICE_H_
#define SKETCHLINK_SERVE_SERVICE_H_

// Linkage-as-a-service: multi-tenant named indexes over the streaming
// summarization stack, exposed as a small JSON-over-HTTP API. Each index
// owns the full per-tenant pipeline — a ShardedSBlockSketch with its own
// sketch configuration and memory budget, a spill kv::Db under the scratch
// directory, a blocking scheme, a RecordSimilarity — with an independent
// lifecycle (create / insert / query / delete).
//
//   POST   /v1/indexes/{name}           create (JSON config body, 201/409)
//   POST   /v1/indexes/{name}/records   batched insert
//   POST   /v1/indexes/{name}/query     candidate retrieval (+ optional
//                                       similarity verification)
//   GET    /v1/indexes                  list + per-index stats
//   DELETE /v1/indexes/{name}           drop the index and its spill data
//
// Concurrency: the name->index map is mutex-guarded; operations resolve
// the shared_ptr under the lock and then run lock-free against the index
// (the sketch is internally synchronized, the record store reader/writer
// locked). DELETE only erases the map entry — in-flight requests holding
// the shared_ptr finish safely, and the last holder tears the index down
// (including removing its spill directory).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "blocking/presets.h"
#include "common/status.h"
#include "core/sharded_sketch.h"
#include "datagen/generators.h"
#include "kv/db.h"
#include "linkage/record_store.h"
#include "linkage/similarity.h"
#include "serve/json.h"
#include "serve/server.h"

namespace sketchlink::serve {

class LinkageService {
 public:
  struct Options {
    /// Root of per-index spill directories (created on demand; each index
    /// gets scratch_dir/<name>, removed when the index is deleted).
    std::string scratch_dir = "/tmp/sketchlink_api";
    /// Hard cap on concurrently existing indexes (409 beyond it).
    size_t max_indexes = 16;
    /// Hard cap on records per insert batch (400 beyond it).
    size_t max_batch_records = 10'000;
    /// When set, per-index sketch instruments register here under the
    /// index name (must outlive the service).
    obs::Registry* registry = nullptr;
  };

  explicit LinkageService(const Options& options);
  ~LinkageService();

  LinkageService(const LinkageService&) = delete;
  LinkageService& operator=(const LinkageService&) = delete;

  /// Wires the five endpoints onto `server`. The service must outlive it.
  void RegisterRoutes(Server* server);

  // Endpoint implementations (public so unit tests can drive them without
  // a socket; the Server routes call exactly these).
  obs::HttpResponse CreateIndex(const Server::Request& request);
  obs::HttpResponse InsertRecords(const Server::Request& request);
  obs::HttpResponse Query(const Server::Request& request);
  obs::HttpResponse ListIndexes(const Server::Request& request);
  obs::HttpResponse DeleteIndex(const Server::Request& request);

  size_t num_indexes() const;

 private:
  /// One tenant. Declaration order is teardown-critical: the sketch spills
  /// into spill_db on destruction, so spill_db must outlive it (members
  /// destroy in reverse order).
  struct Index {
    std::string name;
    datagen::DatasetKind kind;
    double threshold = 0.75;
    std::string spill_dir;
    std::unique_ptr<kv::Db> spill_db;
    std::unique_ptr<StandardBlocker> blocker;
    std::unique_ptr<RecordSimilarity> similarity;
    std::unique_ptr<ShardedSBlockSketch> sketch;
    RecordStore store;
    std::vector<obs::Registration> metric_regs;
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> queries{0};

    ~Index();
  };

  std::shared_ptr<Index> FindIndex(std::string_view name) const;

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Index>, std::less<>> indexes_;
  /// Monotonic suffix for spill dirs: a re-created index must never share a
  /// directory with a dying incarnation of the same name.
  std::atomic<uint64_t> next_incarnation_{0};
};

}  // namespace sketchlink::serve

#endif  // SKETCHLINK_SERVE_SERVICE_H_

#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sketchlink::serve {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    Json value;
    SKETCHLINK_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing garbage");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't':
        if (!ConsumeWord("true")) return Error("bad literal");
        *out = Json::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Error("bad literal");
        *out = Json::Bool(false);
        return Status::OK();
      case 'n':
        if (!ConsumeWord("null")) return Error("bad literal");
        *out = Json::Null();
        return Status::OK();
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      Json key;
      SKETCHLINK_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      SKETCHLINK_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key.string_value(), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      Json value;
      SKETCHLINK_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(Json* out) {
    ++pos_;  // '"'
    std::string value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = Json::Str(std::move(value));
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        value += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value += '"'; break;
        case '\\': value += '\\'; break;
        case '/': value += '/'; break;
        case 'b': value += '\b'; break;
        case 'f': value += '\f'; break;
        case 'n': value += '\n'; break;
        case 'r': value += '\r'; break;
        case 't': value += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // BMP only; encode as UTF-8. Surrogate halves are kept as-is
          // bytes-wise via the replacement below (tolerant, never fails).
          if (code < 0x80) {
            value += static_cast<char>(code);
          } else if (code < 0x800) {
            value += static_cast<char>(0xC0 | (code >> 6));
            value += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            value += static_cast<char>(0xE0 | (code >> 12));
            value += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            value += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    *out = Json::Number(parsed);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = d;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Json::GetNumber(std::string_view key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

uint64_t Json::GetUint(std::string_view key, uint64_t fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  const double d = v->number_value();
  if (d < 0 || d != std::floor(d)) return fallback;
  return static_cast<uint64_t>(d);
}

std::string Json::GetString(std::string_view key,
                            std::string_view fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value()
                                        : std::string(fallback);
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

void Json::Append(Json value) {
  if (type_ == Type::kArray) array_.push_back(std::move(value));
}

void Json::Set(std::string key, Json value) {
  if (type_ == Type::kObject) {
    object_.emplace_back(std::move(key), std::move(value));
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kNumber: {
      // Integers in the exactly-representable range print as integers so
      // record ids survive a JSON round trip byte-identically.
      if (number_ >= 0 && number_ <= 9007199254740992.0 &&
          number_ == std::floor(number_)) {
        *out += std::to_string(static_cast<uint64_t>(number_));
      } else {
        // Shortest representation that round-trips: 0.8 prints as "0.8",
        // not "0.80000000000000004".
        char buf[32];
        for (int precision = 15; precision <= 17; ++precision) {
          std::snprintf(buf, sizeof(buf), "%.*g", precision, number_);
          if (std::strtod(buf, nullptr) == number_) break;
        }
        *out += buf;
      }
      return;
    }
    case Type::kString: *out += JsonEscape(string_); return;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) *out += ',';
        array_[i].DumpTo(out);
      }
      *out += ']';
      return;
    }
    case Type::kObject: {
      *out += '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) *out += ',';
        *out += JsonEscape(object_[i].first);
        *out += ':';
        object_[i].second.DumpTo(out);
      }
      *out += '}';
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace sketchlink::serve

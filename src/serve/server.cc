#include "serve/server.h"

#include <chrono>
#include <cstdlib>
#include <exception>

#include "obs/spans.h"

namespace sketchlink::serve {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    segments.emplace_back(path.substr(start, end - start));
    start = end;
  }
  return segments;
}

obs::HttpResponse JsonError(int status, std::string_view message) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"";
  response.body += message;
  response.body += "\"}\n";
  return response;
}

}  // namespace

std::string_view Server::Request::Param(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return std::string_view(value);
  }
  return {};
}

Server::Server(const Options& options) : options_(options) {}

Server::~Server() { Shutdown(); }

void Server::AddRoute(std::string method, std::string pattern,
                      Handler handler) {
  Route route;
  route.method = std::move(method);
  route.segments = SplitPath(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

const Server::Route* Server::MatchRoute(
    const std::string& method, const std::string& path,
    std::vector<std::pair<std::string, std::string>>* params,
    bool* path_known) const {
  *path_known = false;
  const std::vector<std::string> segments = SplitPath(path);
  for (const Route& route : routes_) {
    if (route.segments.size() != segments.size()) continue;
    std::vector<std::pair<std::string, std::string>> captured;
    bool match = true;
    for (size_t i = 0; i < segments.size(); ++i) {
      const std::string& pattern = route.segments[i];
      if (pattern.size() >= 2 && pattern.front() == '{' &&
          pattern.back() == '}') {
        if (segments[i].empty()) {
          match = false;
          break;
        }
        captured.emplace_back(pattern.substr(1, pattern.size() - 2),
                              segments[i]);
      } else if (pattern != segments[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    *path_known = true;
    if (route.method != method) continue;  // maybe another verb matches
    *params = std::move(captured);
    return &route;
  }
  return nullptr;
}

uint64_t Server::DeadlineFor(const obs::HttpRequest& http,
                             uint64_t now_ns) const {
  uint64_t budget_ms = options_.default_deadline_ms;
  const std::string_view header = http.Header("x-deadline-ms");
  if (!header.empty()) {
    char* end = nullptr;
    const std::string copy(header);
    const unsigned long long parsed = std::strtoull(copy.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      budget_ms = static_cast<uint64_t>(parsed);
    }
  }
  if (budget_ms > options_.max_deadline_ms) budget_ms = options_.max_deadline_ms;
  return now_ns + budget_ms * 1'000'000ULL;
}

Status Server::Start() {
  if (running()) return Status::FailedPrecondition("server already started");

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  loop_ = std::make_unique<EventLoop>(
      options_.loop, [this](uint64_t conn_id, obs::HttpRequest&& http) {
        OnRequest(conn_id, std::move(http));
      });

  if (options_.registry != nullptr) {
    obs::Registry* registry = options_.registry;
    const auto id = [](std::string name, std::string help) {
      return obs::MetricId(std::move(name), std::move(help),
                           {{"plane", "serve"}});
    };
    registrations_.push_back(registry->AddCounter(
        id("serve_requests_admitted_total", "requests admitted to the queue"),
        &admitted_));
    registrations_.push_back(registry->AddCounter(
        id("serve_requests_executed_total", "requests whose handler ran"),
        &executed_));
    registrations_.push_back(registry->AddCounter(
        id("serve_shed_queue_full_total", "requests rejected 429 (queue full)"),
        &shed_queue_full_));
    registrations_.push_back(registry->AddCounter(
        id("serve_shed_deadline_total",
           "requests shed 503 (deadline expired before execution)"),
        &shed_deadline_));
    registrations_.push_back(registry->AddCounter(
        id("serve_shed_draining_total", "requests rejected 503 (draining)"),
        &shed_draining_));
    registrations_.push_back(registry->AddCounter(
        id("serve_responses_2xx_total", "2xx responses"), &responses_2xx_));
    registrations_.push_back(registry->AddCounter(
        id("serve_responses_4xx_total", "4xx responses"), &responses_4xx_));
    registrations_.push_back(registry->AddCounter(
        id("serve_responses_5xx_total", "5xx responses"), &responses_5xx_));
    registrations_.push_back(registry->AddCallbackGauge(
        id("serve_queue_depth", "admitted requests not yet executing"),
        [this] { return static_cast<double>(queue_depth()); }));
    registrations_.push_back(registry->AddCallbackGauge(
        id("serve_open_connections", "open client connections"), [this] {
          return loop_ != nullptr
                     ? static_cast<double>(loop_->num_connections())
                     : 0.0;
        }));
    registrations_.push_back(registry->AddHistogramFn(
        id("serve_request_latency_nanos",
           "admission-to-response latency of executed requests"),
        [this] { return request_latency_nanos_.Snapshot(); }));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = false;
    stopping_ = false;
  }

  SKETCHLINK_RETURN_IF_ERROR(loop_->Start());

  // Turn the batch pool into resident request executors: one dispatcher
  // thread submits a single RunShards batch whose shards are the worker
  // loops; the batch (and thus the dispatcher) returns at shutdown.
  dispatcher_ = std::thread([this] {
    pool_->RunShards(pool_->num_threads(), [this](size_t) { WorkerLoop(); });
  });
  return Status::OK();
}

void Server::Shutdown() {
  if (loop_ == nullptr && !dispatcher_.joinable()) return;

  if (loop_ != nullptr) loop_->StopAccepting();
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (loop_ != nullptr) loop_->Stop();
  loop_.reset();
  pool_.reset();
  registrations_.clear();
}

Server::Stats Server::stats() const {
  Stats stats;
  stats.admitted = admitted_.value();
  stats.executed = executed_.value();
  stats.shed_queue_full = shed_queue_full_.value();
  stats.shed_deadline = shed_deadline_.value();
  stats.shed_draining = shed_draining_.value();
  stats.responses_2xx = responses_2xx_.value();
  stats.responses_4xx = responses_4xx_.value();
  stats.responses_5xx = responses_5xx_.value();
  return stats;
}

size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Server::Respond(uint64_t conn_id, const obs::HttpResponse& response) {
  if (response.status >= 500) {
    responses_5xx_.Inc();
  } else if (response.status >= 400) {
    responses_4xx_.Inc();
  } else {
    responses_2xx_.Inc();
  }
  loop_->SendResponse(conn_id, response);
}

void Server::OnRequest(uint64_t conn_id, obs::HttpRequest&& http) {
  const uint64_t now_ns = NowNanos();

  bool draining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining = draining_;
  }
  if (draining) {
    shed_draining_.Inc();
    if (options_.tracer != nullptr) {
      auto scope = options_.tracer->StartTrace("serve", "shed_draining");
      scope.MarkError();
    }
    Respond(conn_id, JsonError(503, "server draining"));
    return;
  }

  Work work;
  work.conn_id = conn_id;
  bool path_known = false;
  work.route = MatchRoute(http.method, http.path, &work.request.params,
                          &path_known);
  if (work.route == nullptr) {
    Respond(conn_id, path_known ? JsonError(405, "method not allowed")
                                : JsonError(404, "not found"));
    return;
  }
  work.deadline_ns = DeadlineFor(http, now_ns);
  work.enqueued_ns = now_ns;
  work.request.http = std::move(http);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.max_queue) {
      // Shed on the loop thread: the rejection never occupies a worker.
      shed_queue_full_.Inc();
      if (options_.tracer != nullptr) {
        auto scope = options_.tracer->StartTrace("serve", "shed_queue");
        scope.MarkError();
      }
      obs::HttpResponse response = JsonError(429, "queue full");
      response.headers.emplace_back(
          "Retry-After", std::to_string(options_.retry_after_seconds));
      // Count outside Respond's critical path but inside the lock is fine:
      // Respond only touches counters and the loop's command queue.
      responses_4xx_.Inc();
      loop_->SendResponse(conn_id, std::move(response));
      return;
    }
    admitted_.Inc();
    queue_.push_back(std::move(work));
  }
  work_cv_.notify_one();
}

void Server::WorkerLoop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      work = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    const uint64_t now_ns = NowNanos();
    obs::HttpResponse response;
    if (now_ns > work.deadline_ns) {
      // Expired while queued: shed without executing — under overload the
      // server stops burning workers on answers nobody is waiting for.
      shed_deadline_.Inc();
      if (options_.tracer != nullptr) {
        auto scope = options_.tracer->StartTrace("serve", "shed_deadline");
        scope.MarkError();
      }
      response = JsonError(503, "deadline exceeded before execution");
    } else {
      executed_.Inc();
      obs::TraceScope scope;
      if (options_.tracer != nullptr) {
        // The ambient context makes engine/sketch/kv spans created inside
        // the handler parent to this request automatically.
        scope = options_.tracer->StartTrace("serve", "request");
      }
      try {
        response = work.route->handler(work.request);
      } catch (const std::exception& e) {
        response = JsonError(500, "internal error");
      }
      if (response.status >= 500) scope.MarkError();
      request_latency_nanos_.Record(NowNanos() - work.enqueued_ns);
    }
    Respond(work.conn_id, response);

    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace sketchlink::serve

#include "serve/service.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

namespace sketchlink::serve {

namespace {

obs::HttpResponse JsonResponse(int status, const Json& body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = body.Dump();
  response.body += '\n';
  return response;
}

obs::HttpResponse ErrorResponse(int status, std::string message) {
  Json body = Json::Object();
  body.Set("error", Json::Str(std::move(message)));
  return JsonResponse(status, body);
}

bool ValidIndexName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool ParseKind(std::string_view text, datagen::DatasetKind* kind) {
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "ncvr") *kind = datagen::DatasetKind::kNcvr;
  else if (lower == "dblp") *kind = datagen::DatasetKind::kDblp;
  else if (lower == "lab") *kind = datagen::DatasetKind::kLab;
  else return false;
  return true;
}

bool ParseDistance(std::string_view text, KeyDistanceKind* kind) {
  if (text == "jw" || text == "jaro_winkler") {
    *kind = KeyDistanceKind::kJaroWinkler;
  } else if (text == "qgram" || text == "qgram_dice") {
    *kind = KeyDistanceKind::kQGramDice;
  } else if (text == "lev" || text == "levenshtein") {
    *kind = KeyDistanceKind::kLevenshtein;
  } else {
    return false;
  }
  return true;
}

/// Parses one {"id":..,"entity_id":..,"fields":[..]} object.
/// `require_id` is true for inserts (queries don't need one).
Status RecordFromJson(const Json& json, bool require_id, Record* record) {
  if (!json.is_object()) return Status::InvalidArgument("record not an object");
  const Json* id = json.Find("id");
  if (id != nullptr) {
    if (!id->is_number() || id->number_value() < 0) {
      return Status::InvalidArgument("record id must be a non-negative number");
    }
    record->id = static_cast<RecordId>(id->number_value());
  } else if (require_id) {
    return Status::InvalidArgument("record missing id");
  }
  record->entity_id = json.GetUint("entity_id", 0);
  const Json* fields = json.Find("fields");
  if (fields == nullptr || !fields->is_array() ||
      fields->array_items().empty()) {
    return Status::InvalidArgument("record missing fields array");
  }
  record->fields.clear();
  record->fields.reserve(fields->array_items().size());
  for (const Json& field : fields->array_items()) {
    if (!field.is_string()) {
      return Status::InvalidArgument("record fields must be strings");
    }
    record->fields.push_back(field.string_value());
  }
  return Status::OK();
}

/// Largest field index an index's blocking + matching config reads.
int RequiredFields(const StandardBlocker& blocker,
                   const RecordSimilarity& similarity) {
  int max_index = 0;
  for (const auto& part : blocker.parts()) {
    max_index = std::max(max_index, part.field_index);
  }
  for (const int field : similarity.match_fields()) {
    max_index = std::max(max_index, field);
  }
  return max_index + 1;
}

}  // namespace

LinkageService::Index::~Index() {
  // Sketch first (flushes pending spills into spill_db), then the db, then
  // the on-disk spill data — a deleted index leaves nothing behind.
  metric_regs.clear();
  sketch.reset();
  spill_db.reset();
  if (!spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir, ec);
  }
}

LinkageService::LinkageService(const Options& options) : options_(options) {}

LinkageService::~LinkageService() = default;

std::shared_ptr<LinkageService::Index> LinkageService::FindIndex(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = indexes_.find(name);
  return it != indexes_.end() ? it->second : nullptr;
}

size_t LinkageService::num_indexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.size();
}

void LinkageService::RegisterRoutes(Server* server) {
  server->AddRoute("GET", "/v1/indexes",
                   [this](const Server::Request& r) { return ListIndexes(r); });
  server->AddRoute("POST", "/v1/indexes/{name}",
                   [this](const Server::Request& r) { return CreateIndex(r); });
  server->AddRoute("DELETE", "/v1/indexes/{name}",
                   [this](const Server::Request& r) { return DeleteIndex(r); });
  server->AddRoute("POST", "/v1/indexes/{name}/records",
                   [this](const Server::Request& r) { return InsertRecords(r); });
  server->AddRoute("POST", "/v1/indexes/{name}/query",
                   [this](const Server::Request& r) { return Query(r); });
}

obs::HttpResponse LinkageService::CreateIndex(const Server::Request& request) {
  const std::string name(request.Param("name"));
  if (!ValidIndexName(name)) {
    return ErrorResponse(400,
                         "index name must match [A-Za-z0-9_-]{1,64}");
  }

  Json config = Json::Object();
  if (!request.http.body.empty()) {
    Result<Json> parsed = Json::Parse(request.http.body);
    if (!parsed.ok()) {
      return ErrorResponse(400, parsed.status().message());
    }
    if (!parsed.value().is_object()) {
      return ErrorResponse(400, "config body must be a JSON object");
    }
    config = std::move(parsed).value();
  }

  datagen::DatasetKind kind = datagen::DatasetKind::kNcvr;
  const std::string kind_text = config.GetString("kind", "ncvr");
  if (!ParseKind(kind_text, &kind)) {
    return ErrorResponse(400, "unknown kind (expected ncvr|dblp|lab)");
  }

  SBlockSketchOptions sketch_options;
  sketch_options.sketch.lambda =
      static_cast<size_t>(config.GetUint("lambda", 3));
  sketch_options.sketch.delta = config.GetNumber("delta", 0.1);
  sketch_options.sketch.theta = config.GetNumber("theta", 0.25);
  sketch_options.mu = static_cast<size_t>(config.GetUint("mu", 10'000));
  const std::string distance = config.GetString("distance", "jw");
  if (!ParseDistance(distance, &sketch_options.sketch.distance_kind)) {
    return ErrorResponse(400, "unknown distance (expected jw|qgram|lev)");
  }
  const size_t stripes = static_cast<size_t>(
      config.GetUint("stripes", ShardedSBlockSketch::kDefaultStripes));
  const double threshold = config.GetNumber("threshold", 0.75);
  if (sketch_options.sketch.lambda == 0 || sketch_options.mu == 0 ||
      stripes == 0 || stripes > 256 ||
      sketch_options.sketch.delta <= 0 || sketch_options.sketch.delta >= 1 ||
      sketch_options.sketch.theta <= 0 || threshold <= 0 || threshold > 1) {
    return ErrorResponse(400, "config values out of range");
  }

  auto index = std::make_shared<Index>();
  index->name = name;
  index->kind = kind;
  index->threshold = threshold;
  // Per-incarnation spill dir: DELETE only drops the map entry, and the
  // directory is removed when the last in-flight holder destroys the
  // Index — which can overlap a re-create of the same name. A unique
  // suffix keeps the new incarnation's spill data out of the old one's
  // teardown path.
  index->spill_dir = options_.scratch_dir + "/" + name + "." +
                     std::to_string(next_incarnation_.fetch_add(1) + 1);

  {
    // Reserve the name before the (slow) db open so two concurrent creates
    // of the same name cannot both build an index.
    std::lock_guard<std::mutex> lock(mu_);
    if (indexes_.count(name) != 0) {
      return ErrorResponse(409, "index already exists");
    }
    if (indexes_.size() >= options_.max_indexes) {
      return ErrorResponse(409, "too many indexes");
    }
    indexes_.emplace(name, nullptr);  // placeholder
  }

  const auto unreserve = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    indexes_.erase(name);
  };

  std::error_code ec;
  std::filesystem::create_directories(index->spill_dir, ec);
  if (ec) {
    unreserve();
    return ErrorResponse(500, "cannot create spill dir: " + ec.message());
  }
  Result<std::unique_ptr<kv::Db>> db = kv::Db::Open(index->spill_dir);
  if (!db.ok()) {
    unreserve();
    return ErrorResponse(500,
                         "spill db open: " + db.status().message());
  }
  index->spill_db = std::move(db).value();
  index->blocker = MakeStandardBlocker(kind);
  index->similarity =
      std::make_unique<RecordSimilarity>(MatchFieldsFor(kind), threshold);
  index->sketch = std::make_unique<ShardedSBlockSketch>(
      sketch_options, index->spill_db.get(), KeyDistanceFn(), stripes);
  if (options_.registry != nullptr) {
    index->metric_regs =
        index->sketch->RegisterMetrics(options_.registry, "api_" + name);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    indexes_[name] = index;
  }

  Json body = Json::Object();
  body.Set("name", Json::Str(name));
  body.Set("kind", Json::Str(std::string(datagen::DatasetKindName(kind))));
  body.Set("lambda", Json::Int(sketch_options.sketch.lambda));
  body.Set("rho", Json::Int(sketch_options.sketch.rho()));
  body.Set("theta", Json::Number(sketch_options.sketch.theta));
  body.Set("mu", Json::Int(sketch_options.mu));
  body.Set("stripes", Json::Int(stripes));
  body.Set("threshold", Json::Number(threshold));
  return JsonResponse(201, body);
}

obs::HttpResponse LinkageService::InsertRecords(
    const Server::Request& request) {
  const std::shared_ptr<Index> index = FindIndex(request.Param("name"));
  if (index == nullptr) return ErrorResponse(404, "no such index");

  Result<Json> parsed = Json::Parse(request.http.body);
  if (!parsed.ok()) return ErrorResponse(400, parsed.status().message());
  const Json* records = parsed.value().Find("records");
  if (records == nullptr || !records->is_array()) {
    return ErrorResponse(400, "body must carry a records array");
  }
  if (records->array_items().size() > options_.max_batch_records) {
    return ErrorResponse(400, "batch too large (max " +
                                  std::to_string(options_.max_batch_records) +
                                  " records)");
  }

  const int required_fields =
      RequiredFields(*index->blocker, *index->similarity);
  uint64_t inserted = 0;
  for (const Json& json : records->array_items()) {
    Record record;
    const Status status = RecordFromJson(json, /*require_id=*/true, &record);
    if (!status.ok()) {
      return ErrorResponse(400, std::string(status.message()) +
                                    " (after " + std::to_string(inserted) +
                                    " inserted)");
    }
    if (record.fields.size() < static_cast<size_t>(required_fields)) {
      return ErrorResponse(
          400, "record " + std::to_string(record.id) + " has " +
                   std::to_string(record.fields.size()) + " fields, index " +
                   "needs " + std::to_string(required_fields));
    }
    const Status put = index->store.Put(record);
    if (!put.ok()) {
      return ErrorResponse(500, std::string(put.message()));
    }
    const std::string key_values = index->blocker->KeyValues(record);
    for (const std::string& key : index->blocker->Keys(record)) {
      const Status insert = index->sketch->Insert(key, key_values, record.id);
      if (!insert.ok()) {
        return ErrorResponse(500, std::string(insert.message()));
      }
    }
    ++inserted;
  }
  index->inserts.fetch_add(inserted, std::memory_order_relaxed);

  Json body = Json::Object();
  body.Set("index", Json::Str(index->name));
  body.Set("inserted", Json::Int(inserted));
  body.Set("records", Json::Int(index->store.size()));
  return JsonResponse(200, body);
}

obs::HttpResponse LinkageService::Query(const Server::Request& request) {
  const std::shared_ptr<Index> index = FindIndex(request.Param("name"));
  if (index == nullptr) return ErrorResponse(404, "no such index");

  Result<Json> parsed = Json::Parse(request.http.body);
  if (!parsed.ok()) return ErrorResponse(400, parsed.status().message());
  const Json* record_json = parsed.value().Find("record");
  if (record_json == nullptr) {
    return ErrorResponse(400, "body must carry a record object");
  }
  Record query;
  const Status status =
      RecordFromJson(*record_json, /*require_id=*/false, &query);
  if (!status.ok()) return ErrorResponse(400, std::string(status.message()));
  const int required_fields =
      RequiredFields(*index->blocker, *index->similarity);
  if (query.fields.size() < static_cast<size_t>(required_fields)) {
    return ErrorResponse(400, "query record needs at least " +
                                  std::to_string(required_fields) + " fields");
  }
  const bool verify = parsed.value().GetBool("verify", true);
  const uint64_t limit = parsed.value().GetUint("limit", 0);

  // Candidate retrieval: lock-free reads against every blocking key.
  const std::string key_values = index->blocker->KeyValues(query);
  std::vector<RecordId> candidate_ids;
  std::unordered_set<RecordId> seen;
  for (const std::string& key : index->blocker->Keys(query)) {
    Result<CandidateList> candidates =
        index->sketch->Candidates(key, key_values);
    if (!candidates.ok()) {
      return ErrorResponse(500, std::string(candidates.status().message()));
    }
    for (const RecordId id : candidates.value()) {
      if (seen.insert(id).second) candidate_ids.push_back(id);
    }
  }
  index->queries.fetch_add(1, std::memory_order_relaxed);

  Json matches = Json::Array();
  if (verify) {
    // Verified mode: fetch each candidate and score it; matches are the
    // candidates at or above the index threshold, best first.
    SimilarityScorer scorer(*index->similarity, query);
    std::vector<std::pair<double, RecordId>> scored;
    for (const RecordId id : candidate_ids) {
      Result<Record> candidate = index->store.Get(id);
      if (!candidate.ok()) continue;  // id routed but record vanished
      const double score = scorer.Similarity(candidate.value());
      if (score >= index->threshold) scored.emplace_back(score, id);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                return a.first > b.first ||
                       (a.first == b.first && a.second < b.second);
              });
    if (limit != 0 && scored.size() > limit) scored.resize(limit);
    for (const auto& [score, id] : scored) {
      Json match = Json::Object();
      match.Set("id", Json::Int(id));
      match.Set("score", Json::Number(score));
      matches.Append(std::move(match));
    }
  } else {
    size_t count = 0;
    for (const RecordId id : candidate_ids) {
      if (limit != 0 && count >= limit) break;
      Json match = Json::Object();
      match.Set("id", Json::Int(id));
      matches.Append(std::move(match));
      ++count;
    }
  }

  Json body = Json::Object();
  body.Set("index", Json::Str(index->name));
  body.Set("num_candidates", Json::Int(candidate_ids.size()));
  body.Set("verified", Json::Bool(verify));
  body.Set("matches", std::move(matches));
  return JsonResponse(200, body);
}

obs::HttpResponse LinkageService::ListIndexes(const Server::Request&) {
  std::vector<std::shared_ptr<Index>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, index] : indexes_) {
      if (index != nullptr) snapshot.push_back(index);  // skip reservations
    }
  }
  Json list = Json::Array();
  for (const auto& index : snapshot) {
    Json entry = Json::Object();
    entry.Set("name", Json::Str(index->name));
    entry.Set("kind",
              Json::Str(std::string(datagen::DatasetKindName(index->kind))));
    entry.Set("records", Json::Int(index->store.size()));
    entry.Set("live_blocks", Json::Int(index->sketch->num_live_blocks()));
    entry.Set("stripes", Json::Int(index->sketch->num_stripes()));
    entry.Set("mu", Json::Int(index->sketch->options().mu));
    entry.Set("threshold", Json::Number(index->threshold));
    entry.Set("inserts", Json::Int(index->inserts.load(std::memory_order_relaxed)));
    entry.Set("queries", Json::Int(index->queries.load(std::memory_order_relaxed)));
    entry.Set("memory_bytes",
              Json::Int(index->sketch->ApproximateMemoryUsage() +
                        index->store.ApproximateMemoryUsage()));
    list.Append(std::move(entry));
  }
  Json body = Json::Object();
  body.Set("indexes", std::move(list));
  return JsonResponse(200, body);
}

obs::HttpResponse LinkageService::DeleteIndex(const Server::Request& request) {
  const std::string name(request.Param("name"));
  std::shared_ptr<Index> index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = indexes_.find(name);
    if (it == indexes_.end() || it->second == nullptr) {
      return ErrorResponse(404, "no such index");
    }
    index = std::move(it->second);
    indexes_.erase(it);
  }
  // `index` (plus any in-flight request holding the shared_ptr) keeps the
  // tenant alive; the last holder runs ~Index, which removes the spill dir.
  Json body = Json::Object();
  body.Set("deleted", Json::Str(name));
  return JsonResponse(200, body);
}

}  // namespace sketchlink::serve

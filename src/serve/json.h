#ifndef SKETCHLINK_SERVE_JSON_H_
#define SKETCHLINK_SERVE_JSON_H_

// Minimal JSON value + recursive-descent parser for the service plane's
// request/response bodies. Deliberately small: objects preserve insertion
// order, numbers are doubles (with exact uint64 round-tripping for ids up
// to 2^53), strings support the standard escapes plus \uXXXX for the BMP.
// Depth-capped so hostile request bodies cannot blow the stack.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sketchlink::serve {

/// One JSON value. Cheap default construction (null); arrays/objects own
/// their children by value.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double d);
  static Json Int(uint64_t v) { return Number(static_cast<double>(v)); }
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& object_items() const {
    return object_;
  }

  /// Object member by key, or nullptr. First match wins on (invalid but
  /// tolerated) duplicate keys.
  const Json* Find(std::string_view key) const;

  /// Typed object accessors with fallbacks: the value when present AND of
  /// the right type, `fallback` otherwise.
  double GetNumber(std::string_view key, double fallback) const;
  uint64_t GetUint(std::string_view key, uint64_t fallback) const;
  std::string GetString(std::string_view key, std::string_view fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Builder helpers (no-ops on the wrong type).
  void Append(Json value);
  void Set(std::string key, Json value);

  /// Compact serialization (no whitespace). Numbers that hold an exact
  /// integer in [0, 2^53] print without a decimal point.
  std::string Dump() const;

  /// Parses `text` (entire input must be one JSON value; trailing
  /// whitespace allowed, trailing garbage is an error). InvalidArgument
  /// with a position-annotated message on malformed input.
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(std::string_view s);

}  // namespace sketchlink::serve

#endif  // SKETCHLINK_SERVE_JSON_H_

#ifndef SKETCHLINK_SERVE_EVENT_LOOP_H_
#define SKETCHLINK_SERVE_EVENT_LOOP_H_

// Epoll reactor for the service plane: one loop thread multiplexing every
// client connection, so a slow or stalled peer costs one idle entry in the
// interest list instead of a wedged thread (the failure mode of the serial
// telemetry scraper this replaces for serving).
//
// Responsibilities are split with serve::Server:
//   - EventLoop owns sockets: accept, non-blocking reads through
//     HttpRequestParser, buffered non-blocking writes, keep-alive +
//     pipelining, per-connection idle/stall timeouts, parse-error replies.
//   - The consumer (Server) owns semantics: on every fully parsed request
//     the loop invokes `on_request(conn_id, request)` ON THE LOOP THREAD;
//     the consumer either answers inline or hands the request to a worker,
//     and eventually calls SendResponse(conn_id, ...) from ANY thread.
//
// While a request is executing the loop stops watching the connection for
// reads (EPOLLIN off), so a pipelining client cannot make the loop buffer
// unbounded requests; its bytes sit in the kernel socket buffer until the
// response is written. Connection ids are monotonically increasing and
// never reused, so a worker finishing against a connection that has since
// closed is a harmless no-op (no fd ABA).

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/http_message.h"

namespace sketchlink::serve {

class EventLoop {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral, see port()
    bool reuse_address = false;
    /// A connection mid-request or mid-response with no socket progress for
    /// this long is timed out (408 when a request had started; silent close
    /// otherwise). 0 disables.
    uint64_t io_timeout_ms = 10'000;
    /// An idle keep-alive connection (no request in progress) is closed
    /// after this long. 0 disables.
    uint64_t idle_timeout_ms = 60'000;
    size_t max_head_bytes = 16 * 1024;
    size_t max_body_bytes = 8 * 1024 * 1024;
    /// Accept backlog.
    int listen_backlog = 128;
  };

  /// Called on the loop thread for every complete request.
  using RequestHandler =
      std::function<void(uint64_t conn_id, obs::HttpRequest&& request)>;

  explicit EventLoop(const Options& options, RequestHandler on_request);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds + listens + starts the loop thread.
  Status Start();

  /// Stops accepting new connections; established connections keep being
  /// served (used as phase one of a graceful drain). Callable from any
  /// thread; idempotent.
  void StopAccepting();

  /// Closes everything and joins the loop thread. Connections still open
  /// are dropped. Idempotent.
  void Stop();

  /// Completes the request executing on `conn_id`: queues the serialized
  /// response for non-blocking writeout and (once drained) resumes reading
  /// when both sides want keep-alive, else closes. Thread-safe. Unknown /
  /// already-closed conn ids are ignored.
  void SendResponse(uint64_t conn_id, obs::HttpResponse response,
                    bool close_after = false);

  bool running() const { return loop_thread_.joinable(); }
  uint16_t port() const { return port_; }

  /// Number of currently open client connections (loop-thread maintained,
  /// read with a lock; for tests and stats).
  size_t num_connections() const;

 private:
  enum class ConnState {
    kReading,    // EPOLLIN armed, feeding the parser
    kExecuting,  // request handed to the consumer; not watching reads
    kWriting,    // EPOLLOUT armed, draining out_buffer
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    ConnState state = ConnState::kReading;
    obs::HttpRequestParser parser;
    std::string out_buffer;
    size_t out_written = 0;
    bool close_after_write = false;
    uint64_t last_activity_ms = 0;

    Connection(size_t max_head, size_t max_body)
        : parser(max_head, max_body) {}
  };

  struct Command {
    uint64_t conn_id;
    obs::HttpResponse response;
    bool close_after;
  };

  void Run();
  void AcceptReady();
  void ReadReady(Connection* conn);
  void WriteReady(Connection* conn);
  /// Parses buffered bytes; dispatches at most one request. Returns false
  /// when the connection was closed.
  bool AdvanceParser(Connection* conn, std::string_view data);
  void StartResponse(Connection* conn, const obs::HttpResponse& response,
                     bool close_after);
  void FinishWrite(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void SweepTimeouts();
  void DrainCommands();
  void Wake();
  void UpdateEpoll(Connection* conn, uint32_t events);

  Options options_;
  RequestHandler on_request_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread loop_thread_;
  bool accepting_ = false;  // loop thread only (after Start)

  mutable std::mutex mu_;
  uint64_t next_conn_id_ = 1;                       // loop thread only
  std::unordered_map<uint64_t, Connection*> conns_;  // guarded by mu_
  std::vector<Command> commands_;                    // guarded by mu_
  bool stop_requested_ = false;                      // guarded by mu_
  bool stop_accepting_requested_ = false;            // guarded by mu_
};

}  // namespace sketchlink::serve

#endif  // SKETCHLINK_SERVE_EVENT_LOOP_H_

#ifndef SKETCHLINK_SERVE_SERVER_H_
#define SKETCHLINK_SERVE_SERVER_H_

// The service plane's HTTP server: an EventLoop front end multiplexing
// connections plus a worker pool executing handlers, glued by an
// admission-controlled queue. The load-shedding contract:
//
//   - The queue is bounded (Options::max_queue). A request arriving at a
//     full queue is answered 429 + Retry-After on the loop thread without
//     ever touching a worker — overload degrades to cheap rejections, not
//     to unbounded memory or latency.
//   - Every admitted request carries a deadline (Options::default
//     clamped-override via the X-Deadline-Ms header). A worker that
//     dequeues an already-expired request answers 503 without executing
//     the handler: when the system is behind, it stops doing work nobody
//     is waiting for anymore. Both shed paths are visible in /traces
//     (error-marked "shed_*" root spans) and in the registry counters.
//   - Shutdown() drains gracefully: stop accepting, let workers finish the
//     queue, then tear down. In-flight requests complete; a draining
//     server answers new requests 503.
//
// Workers come from the repo's batch-shaped common/ThreadPool: a dedicated
// dispatcher thread submits one RunShards batch whose shards are the
// long-lived worker loops, which turns the pool's N-way batch parallelism
// into N resident request executors without a second pool implementation.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/http_message.h"
#include "obs/registry.h"
#include "serve/event_loop.h"

namespace sketchlink::obs {
class Tracer;
}  // namespace sketchlink::obs

namespace sketchlink::serve {

class Server {
 public:
  struct Options {
    EventLoop::Options loop;
    /// Worker parallelism (ThreadPool threads executing handlers).
    size_t num_workers = 4;
    /// Admission bound: requests queued but not yet executing. At capacity
    /// new requests get 429.
    size_t max_queue = 128;
    /// Deadline granted to a request with no X-Deadline-Ms header.
    uint64_t default_deadline_ms = 5'000;
    /// Upper clamp for client-requested deadlines.
    uint64_t max_deadline_ms = 30'000;
    /// Advisory Retry-After (seconds) attached to 429 responses.
    uint64_t retry_after_seconds = 1;
    /// When set, request/shed counters, queue gauges, and the request
    /// latency histogram register here (must outlive the server).
    obs::Registry* registry = nullptr;
    /// When set, every executed request runs under a "serve" root span and
    /// shed requests leave error-marked "shed_queue" / "shed_deadline" /
    /// "shed_draining" traces (must outlive the server).
    obs::Tracer* tracer = nullptr;
  };

  /// One routed request: the HTTP request plus the values captured by
  /// {param} segments of the route pattern, in pattern order.
  struct Request {
    obs::HttpRequest http;
    std::vector<std::pair<std::string, std::string>> params;

    /// Value of route parameter `name`, or "" (params are validated by the
    /// route pattern, so absent means a handler bug, not client input).
    std::string_view Param(std::string_view name) const;
  };

  using Handler = std::function<obs::HttpResponse(const Request&)>;

  /// Point-in-time snapshot of the shedding counters (also exported via
  /// the registry; this is the lock-free test/bench view).
  struct Stats {
    uint64_t admitted = 0;
    uint64_t executed = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_deadline = 0;
    uint64_t shed_draining = 0;
    uint64_t responses_2xx = 0;
    uint64_t responses_4xx = 0;
    uint64_t responses_5xx = 0;
  };

  explicit Server(const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers `handler` for `method` requests matching `pattern`, a
  /// '/'-separated path where a "{name}" segment matches any single
  /// non-empty segment and captures it as a param. Patterns are matched in
  /// registration order; first match wins. Must be called before Start.
  void AddRoute(std::string method, std::string pattern, Handler handler);

  Status Start();

  /// Graceful drain: stop accepting, answer new requests on live
  /// connections with 503, execute everything already admitted, then stop
  /// the loop and join the workers. Idempotent; the destructor calls it.
  void Shutdown();

  uint16_t port() const { return loop_ != nullptr ? loop_->port() : 0; }
  bool running() const { return dispatcher_.joinable(); }
  Stats stats() const;

  /// Queue depth right now (tests and the list endpoint).
  size_t queue_depth() const;

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  // literal, or "{name}" captures
    Handler handler;
  };

  struct Work {
    uint64_t conn_id = 0;
    Request request;
    const Route* route = nullptr;
    uint64_t deadline_ns = 0;   // absolute, steady-clock nanoseconds
    uint64_t enqueued_ns = 0;
  };

  void OnRequest(uint64_t conn_id, obs::HttpRequest&& http);
  void WorkerLoop();
  void Respond(uint64_t conn_id, const obs::HttpResponse& response);
  const Route* MatchRoute(
      const std::string& method, const std::string& path,
      std::vector<std::pair<std::string, std::string>>* params,
      bool* path_known) const;
  uint64_t DeadlineFor(const obs::HttpRequest& http, uint64_t now_ms) const;

  Options options_;
  std::vector<Route> routes_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread dispatcher_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for work / stop
  std::condition_variable drain_cv_;  // Shutdown waits for quiescence
  std::deque<Work> queue_;
  size_t in_flight_ = 0;  // dequeued, handler still running
  bool draining_ = false;
  bool stopping_ = false;

  // Relaxed counters: exact totals, no ordering promises between them.
  obs::Counter admitted_;
  obs::Counter executed_;
  obs::Counter shed_queue_full_;
  obs::Counter shed_deadline_;
  obs::Counter shed_draining_;
  obs::Counter responses_2xx_;
  obs::Counter responses_4xx_;
  obs::Counter responses_5xx_;
  obs::StripedHistogram request_latency_nanos_;  // admission -> response
  std::vector<obs::Registration> registrations_;
};

}  // namespace sketchlink::serve

#endif  // SKETCHLINK_SERVE_SERVER_H_

#include "serve/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace sketchlink::serve {

namespace {

// epoll user data: connection ids start above the reserved tags.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

EventLoop::EventLoop(const Options& options, RequestHandler on_request)
    : options_(options),
      on_request_(std::move(on_request)),
      next_conn_id_(kFirstConnId) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  if (running()) return Status::FailedPrecondition("event loop already started");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  if (::pipe(wake_pipe_) != 0) {
    const Status status =
        Status::IOError(std::string("pipe: ") + std::strerror(errno));
    CloseFd(&epoll_fd_);
    return status;
  }
  SetNonBlocking(wake_pipe_[0]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    const Status status =
        Status::IOError(std::string("socket: ") + std::strerror(errno));
    Stop();
    return status;
  }
  if (options_.reuse_address) {
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    Stop();
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    Stop();
    return status;
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    Stop();
    return status;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    Stop();
    return status;
  }
  port_ = ntohs(bound.sin_port);

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    const Status status =
        Status::IOError(std::string("epoll_ctl(listen): ") +
                        std::strerror(errno));
    Stop();
    return status;
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) != 0) {
    const Status status =
        Status::IOError(std::string("epoll_ctl(wake): ") +
                        std::strerror(errno));
    Stop();
    return status;
  }

  accepting_ = true;
  stop_requested_ = false;
  stop_accepting_requested_ = false;
  loop_thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::StopAccepting() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_accepting_requested_ = true;
  }
  Wake();
}

void EventLoop::Stop() {
  if (loop_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
    }
    Wake();
    loop_thread_.join();
  }
  CloseFd(&listen_fd_);
  CloseFd(&epoll_fd_);
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
  port_ = 0;
}

void EventLoop::SendResponse(uint64_t conn_id, obs::HttpResponse response,
                             bool close_after) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    commands_.push_back(
        Command{conn_id, std::move(response), close_after});
  }
  Wake();
}

size_t EventLoop::num_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

void EventLoop::Wake() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void EventLoop::UpdateEpoll(Connection* conn, uint32_t events) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void EventLoop::Run() {
  constexpr int kSweepIntervalMs = 200;
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               kSweepIntervalMs);
    if (n < 0 && errno != EINTR) break;

    bool stop = false;
    bool stop_accepting = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop = stop_requested_;
      stop_accepting = stop_accepting_requested_;
    }
    if (stop) {
      // Final drain: responses workers queued just before Stop() must still
      // reach the wire (the shutdown acknowledgement itself travels this
      // path). Start them, then flush in-progress writes with a bounded
      // blocking send; anything slower than that is cut with the rest.
      DrainCommands();
      std::vector<Connection*> writing;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [id, conn] : conns_) {
          if (conn->state == ConnState::kWriting) writing.push_back(conn);
        }
      }
      for (Connection* conn : writing) {
        if (conn->out_written < conn->out_buffer.size()) {
          obs::SendAllWithTimeout(conn->fd,
                                  conn->out_buffer.data() + conn->out_written,
                                  conn->out_buffer.size() - conn->out_written,
                                  /*timeout_ms=*/1000);
        }
      }
      break;
    }
    if (stop_accepting && accepting_) {
      // Closing the listen socket removes it from the interest list; new
      // connection attempts now get RST/refused while the established ones
      // keep draining.
      CloseFd(&listen_fd_);
      accepting_ = false;
    }

    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      const uint64_t tag = events[i].data.u64;
      const uint32_t revents = events[i].events;
      if (tag == kListenTag) {
        if (accepting_) AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {}
        continue;
      }
      Connection* conn = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = conns_.find(tag);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn == nullptr) continue;  // closed earlier in this batch
      if ((revents & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn->id);
        continue;
      }
      if (conn->state == ConnState::kReading && (revents & (EPOLLIN | EPOLLRDHUP)) != 0) {
        ReadReady(conn);
      } else if (conn->state == ConnState::kWriting &&
                 (revents & EPOLLOUT) != 0) {
        WriteReady(conn);
      }
    }

    DrainCommands();
    SweepTimeouts();
  }

  // Loop exit: drop every connection (graceful shutdown drains before
  // calling Stop; this is the hard cut).
  std::vector<Connection*> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : conns_) leftover.push_back(conn);
    conns_.clear();
  }
  for (Connection* conn : leftover) {
    ::close(conn->fd);
    delete conn;
  }
}

void EventLoop::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or transient accept error — retry later
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto* conn = new Connection(options_.max_head_bytes,
                                options_.max_body_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity_ms = NowMillis();
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      delete conn;
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    conns_.emplace(conn->id, conn);
  }
}

void EventLoop::ReadReady(Connection* conn) {
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_activity_ms = NowMillis();
      if (!AdvanceParser(conn, std::string_view(buf, static_cast<size_t>(n)))) {
        return;  // closed, or request dispatched (reads paused)
      }
      continue;
    }
    if (n == 0) {  // peer closed its write side; nothing more will parse
      CloseConnection(conn->id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn->id);
    return;
  }
}

bool EventLoop::AdvanceParser(Connection* conn, std::string_view data) {
  const auto state = conn->parser.Feed(data);
  if (state == obs::HttpRequestParser::State::kError) {
    obs::HttpResponse response;
    response.status = conn->parser.error_status();
    response.body = "bad request\n";
    StartResponse(conn, response, /*close_after=*/true);
    return false;
  }
  if (state != obs::HttpRequestParser::State::kComplete) return true;

  // Dispatch. Reads pause until the response is written (pipelined bytes
  // already received stay in the parser's leftover buffer).
  conn->state = ConnState::kExecuting;
  UpdateEpoll(conn, 0);
  on_request_(conn->id, std::move(conn->parser.mutable_request()));
  return false;
}

void EventLoop::StartResponse(Connection* conn,
                              const obs::HttpResponse& response,
                              bool close_after) {
  const bool keep_alive =
      !close_after && conn->parser.done() && conn->parser.keep_alive();
  conn->out_buffer = SerializeHttpResponse(response, keep_alive);
  conn->out_written = 0;
  conn->close_after_write = !keep_alive;
  conn->state = ConnState::kWriting;
  conn->last_activity_ms = NowMillis();
  // Optimistic immediate write: most responses fit the socket buffer and
  // never need an EPOLLOUT round trip.
  WriteReady(conn);
}

void EventLoop::WriteReady(Connection* conn) {
  while (conn->out_written < conn->out_buffer.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out_buffer.data() + conn->out_written,
               conn->out_buffer.size() - conn->out_written,
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn->out_written += static_cast<size_t>(n);
      conn->last_activity_ms = NowMillis();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpoll(conn, EPOLLOUT);
      return;
    }
    CloseConnection(conn->id);
    return;
  }
  FinishWrite(conn);
}

void EventLoop::FinishWrite(Connection* conn) {
  if (conn->close_after_write) {
    CloseConnection(conn->id);
    return;
  }
  std::string leftover = conn->parser.TakeLeftover();
  conn->parser.Reset();
  conn->state = ConnState::kReading;
  conn->out_buffer.clear();
  conn->out_written = 0;
  UpdateEpoll(conn, EPOLLIN | EPOLLRDHUP);
  conn->last_activity_ms = NowMillis();
  if (!leftover.empty()) {
    // Pipelined request already buffered: advance without waiting for more
    // bytes (may immediately dispatch and pause reads again).
    AdvanceParser(conn, leftover);
  }
}

void EventLoop::CloseConnection(uint64_t conn_id) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
  }
  ::close(conn->fd);
  delete conn;
}

void EventLoop::SweepTimeouts() {
  const uint64_t now = NowMillis();
  std::vector<Connection*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(conns_.size());
    for (auto& [id, conn] : conns_) snapshot.push_back(conn);
  }
  for (Connection* conn : snapshot) {
    const uint64_t idle = now - conn->last_activity_ms;
    switch (conn->state) {
      case ConnState::kReading:
        if (conn->parser.started()) {
          if (options_.io_timeout_ms != 0 && idle > options_.io_timeout_ms) {
            obs::HttpResponse response;
            response.status = 408;
            response.body = "request timeout\n";
            StartResponse(conn, response, /*close_after=*/true);
          }
        } else if (options_.idle_timeout_ms != 0 &&
                   idle > options_.idle_timeout_ms) {
          CloseConnection(conn->id);
        }
        break;
      case ConnState::kWriting:
        if (options_.io_timeout_ms != 0 && idle > options_.io_timeout_ms) {
          // Peer refuses to drain the response; drop it.
          CloseConnection(conn->id);
        }
        break;
      case ConnState::kExecuting:
        // Governed by the server-side request deadline, not socket I/O.
        break;
    }
  }
}

void EventLoop::DrainCommands() {
  std::vector<Command> commands;
  {
    std::lock_guard<std::mutex> lock(mu_);
    commands.swap(commands_);
  }
  for (Command& command : commands) {
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = conns_.find(command.conn_id);
      if (it != conns_.end()) conn = it->second;
    }
    if (conn == nullptr) continue;  // connection died while executing
    if (conn->state != ConnState::kExecuting) continue;  // defensive
    StartResponse(conn, command.response, command.close_after);
  }
}

}  // namespace sketchlink::serve

#ifndef SKETCHLINK_DATAGEN_PERTURB_H_
#define SKETCHLINK_DATAGEN_PERTURB_H_

#include <string>

#include "common/random.h"
#include "record/record.h"

namespace sketchlink::datagen {

/// Character-level corruption engine reproducing the paper's protocol
/// (Sec. 7): "we perturbed all the available fields using at most four edit
/// [substitute], delete, insert, or transpose operations, chosen at random".
class Perturbator {
 public:
  /// `max_ops` random operations are spread over the record's fields
  /// (the number applied per record is uniform in [min_ops, max_ops]).
  Perturbator(uint64_t seed, int max_ops = 4, int min_ops = 1)
      : rng_(seed), max_ops_(max_ops), min_ops_(min_ops) {}

  /// Returns a perturbed copy of `base` with a fresh record id; entity_id is
  /// preserved, which is what ground-truth scoring keys on.
  Record PerturbRecord(const Record& base, RecordId new_id);

  /// Applies one random operation in place; exposed for tests.
  void ApplyRandomOp(std::string* value);

 private:
  void Substitute(std::string* value);
  void Delete(std::string* value);
  void Insert(std::string* value);
  void Transpose(std::string* value);
  char RandomChar();

  Rng rng_;
  int max_ops_;
  int min_ops_;
};

}  // namespace sketchlink::datagen

#endif  // SKETCHLINK_DATAGEN_PERTURB_H_

#ifndef SKETCHLINK_DATAGEN_GENERATORS_H_
#define SKETCHLINK_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <string_view>

#include "record/record.h"

namespace sketchlink::datagen {

/// The three real-world data sets of the paper's evaluation (Table 1),
/// reproduced synthetically (see DESIGN.md, substitutions):
///  - kDblp: bibliographic records  (author, venue, year)
///  - kNcvr: voter registrations    (given name, surname, address, town)
///  - kLab : biological assays      (assay, result, year)
enum class DatasetKind { kDblp, kNcvr, kLab };

/// "DBLP" / "NCVR" / "LAB".
std::string_view DatasetKindName(DatasetKind kind);

/// Field layout of each synthetic data set.
Schema SchemaFor(DatasetKind kind);

/// Parameters for one synthetic workload. Following the paper: Q holds the
/// base records, A holds `copies_per_entity` perturbed copies of each
/// (the paper uses 1,000 copies; the scaled defaults keep the same ratio
/// structure at laptop scale).
struct WorkloadSpec {
  DatasetKind kind = DatasetKind::kNcvr;
  size_t num_entities = 1000;
  size_t copies_per_entity = 10;
  /// "At most four" operations per copy (paper Sec. 7): the count applied is
  /// uniform in [min_perturb_ops, max_perturb_ops]; 0 leaves the copy exact.
  int max_perturb_ops = 4;
  int min_perturb_ops = 0;
  /// Zipf exponent for value-pool draws; 0 = uniform. Name-like data is
  /// heavily skewed, assay panels moderately.
  double zipf_skew = 0.8;
  uint64_t seed = 42;
};

/// A generated workload: the query set Q and the perturbed set A, with
/// shared entity ids as ground truth.
struct Workload {
  Dataset q;
  Dataset a;
};

/// Generates `n` base records of the given kind.
Dataset GenerateBase(DatasetKind kind, size_t n, uint64_t seed,
                     double zipf_skew);

/// Generates Q (base) and A (perturbed copies) per `spec`.
Workload MakeWorkload(const WorkloadSpec& spec);

/// Emits an endless-style stream of perturbed records: `total` records drawn
/// from `base` round-robin with fresh perturbations, in randomized entity
/// order. Used by the SBlockSketch (streaming) experiments.
Dataset MakeStream(const Dataset& base, size_t total, int max_perturb_ops,
                   uint64_t seed);

}  // namespace sketchlink::datagen

#endif  // SKETCHLINK_DATAGEN_GENERATORS_H_

#include "datagen/generators.h"

#include <string>

#include "common/random.h"
#include "datagen/name_pools.h"
#include "datagen/perturb.h"

namespace sketchlink::datagen {

namespace {

// Draws a pool value with Zipf-skewed frequency. Each pool gets its own
// sampler so skew applies within the pool's own rank order.
class PoolDrawer {
 public:
  PoolDrawer(Pool pool, double skew, uint64_t seed)
      : pool_(pool), zipf_(pool.size, skew, seed) {}

  std::string_view Draw() { return pool_.values[zipf_.Next()]; }

 private:
  Pool pool_;
  ZipfSampler zipf_;
};

Record MakeDblpRecord(uint64_t entity, PoolDrawer& given, PoolDrawer& surname,
                      PoolDrawer& venue, PoolDrawer& words, Rng& rng) {
  Record record;
  record.id = entity;
  record.entity_id = entity;
  // author: "SURNAME GIVEN" with an occasional middle initial.
  std::string author(surname.Draw());
  author.push_back(' ');
  author.append(given.Draw());
  if (rng.Bernoulli(0.3)) {
    author.push_back(' ');
    author.push_back(static_cast<char>('A' + rng.UniformUint64(26)));
  }
  // venue: conference/journal plus an occasional workshop word, so venue
  // strings vary in length like real DBLP venue fields do.
  std::string venue_str(venue.Draw());
  if (rng.Bernoulli(0.2)) {
    venue_str.append(" WORKSHOP ");
    venue_str.append(words.Draw());
  }
  const int year = 1970 + static_cast<int>(rng.UniformUint64(50));
  record.fields = {std::move(author), std::move(venue_str),
                   std::to_string(year)};
  return record;
}

Record MakeNcvrRecord(uint64_t entity, PoolDrawer& given, PoolDrawer& surname,
                      PoolDrawer& street, PoolDrawer& town, Rng& rng) {
  Record record;
  record.id = entity;
  record.entity_id = entity;
  std::string address = std::to_string(1 + rng.UniformUint64(9999));
  address.push_back(' ');
  address.append(street.Draw());
  record.fields = {std::string(given.Draw()), std::string(surname.Draw()),
                   std::move(address), std::string(town.Draw())};
  return record;
}

Record MakeLabRecord(uint64_t entity, PoolDrawer& assay, PoolDrawer& result,
                     Rng& rng) {
  Record record;
  record.id = entity;
  record.entity_id = entity;
  // Assay results are continuous measurements, so the result field is
  // high-cardinality as in real laboratory data. (A shared unit suffix or a
  // small categorical pool would let unrelated same-assay records score
  // spuriously high under Jaro-Winkler.)
  (void)result;
  const uint64_t whole = rng.UniformUint64(200);
  const uint64_t frac = rng.UniformUint64(100);
  std::string result_str = std::to_string(whole) + "." +
                           (frac < 10 ? "0" : "") + std::to_string(frac);
  const int year = 2000 + static_cast<int>(rng.UniformUint64(20));
  record.fields = {std::string(assay.Draw()), std::move(result_str),
                   std::to_string(year)};
  return record;
}

}  // namespace

std::string_view DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kDblp:
      return "DBLP";
    case DatasetKind::kNcvr:
      return "NCVR";
    case DatasetKind::kLab:
      return "LAB";
  }
  return "UNKNOWN";
}

Schema SchemaFor(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kDblp:
      return Schema({"author", "venue", "year"});
    case DatasetKind::kNcvr:
      return Schema({"given_name", "surname", "address", "town"});
    case DatasetKind::kLab:
      return Schema({"assay", "result", "year"});
  }
  return Schema(std::vector<std::string>{});
}

Dataset GenerateBase(DatasetKind kind, size_t n, uint64_t seed,
                     double zipf_skew) {
  Dataset dataset(SchemaFor(kind));
  Rng rng(seed);
  switch (kind) {
    case DatasetKind::kDblp: {
      PoolDrawer given(GivenNames(), zipf_skew, seed ^ 0x11);
      PoolDrawer surname(Surnames(), zipf_skew, seed ^ 0x22);
      PoolDrawer venue(Venues(), zipf_skew, seed ^ 0x33);
      PoolDrawer words(TitleWords(), zipf_skew, seed ^ 0x44);
      for (size_t i = 0; i < n; ++i) {
        dataset.Add(MakeDblpRecord(i + 1, given, surname, venue, words, rng));
      }
      break;
    }
    case DatasetKind::kNcvr: {
      PoolDrawer given(GivenNames(), zipf_skew, seed ^ 0x11);
      PoolDrawer surname(Surnames(), zipf_skew, seed ^ 0x22);
      PoolDrawer street(Streets(), zipf_skew, seed ^ 0x33);
      PoolDrawer town(Towns(), zipf_skew, seed ^ 0x44);
      for (size_t i = 0; i < n; ++i) {
        dataset.Add(MakeNcvrRecord(i + 1, given, surname, street, town, rng));
      }
      break;
    }
    case DatasetKind::kLab: {
      PoolDrawer assay(Assays(), zipf_skew, seed ^ 0x11);
      PoolDrawer result(AssayResults(), zipf_skew, seed ^ 0x22);
      for (size_t i = 0; i < n; ++i) {
        dataset.Add(MakeLabRecord(i + 1, assay, result, rng));
      }
      break;
    }
  }
  return dataset;
}

Workload MakeWorkload(const WorkloadSpec& spec) {
  Workload workload;
  workload.q = GenerateBase(spec.kind, spec.num_entities, spec.seed,
                            spec.zipf_skew);
  workload.a = Dataset(SchemaFor(spec.kind));

  Perturbator perturbator(spec.seed ^ 0x9999, spec.max_perturb_ops,
                          spec.min_perturb_ops);
  RecordId next_id = spec.num_entities + 1;
  for (const Record& base : workload.q.records()) {
    for (size_t c = 0; c < spec.copies_per_entity; ++c) {
      workload.a.Add(perturbator.PerturbRecord(base, next_id++));
    }
  }
  return workload;
}

Dataset MakeStream(const Dataset& base, size_t total, int max_perturb_ops,
                   uint64_t seed) {
  Dataset stream(base.schema());
  if (base.empty()) return stream;
  Perturbator perturbator(seed ^ 0x5a5a, max_perturb_ops);
  Rng rng(seed);
  RecordId next_id = 1'000'000'000ULL;  // disjoint from base ids
  for (size_t i = 0; i < total; ++i) {
    const Record& source = base[rng.UniformIndex(base.size())];
    stream.Add(perturbator.PerturbRecord(source, next_id++));
  }
  return stream;
}

}  // namespace sketchlink::datagen

#include "datagen/perturb.h"

namespace sketchlink::datagen {

char Perturbator::RandomChar() {
  // Letters dominate realistic typos; digits appear for numeric fields.
  const uint64_t roll = rng_.UniformUint64(36);
  if (roll < 26) return static_cast<char>('A' + roll);
  return static_cast<char>('0' + (roll - 26));
}

void Perturbator::Substitute(std::string* value) {
  if (value->empty()) return;
  const size_t pos = rng_.UniformIndex(value->size());
  char replacement = RandomChar();
  // Ensure the operation actually changes the string.
  if (replacement == (*value)[pos]) {
    replacement = static_cast<char>(replacement == 'Z' ? 'A'
                                                       : replacement + 1);
  }
  (*value)[pos] = replacement;
}

void Perturbator::Delete(std::string* value) {
  if (value->empty()) return;
  value->erase(rng_.UniformIndex(value->size()), 1);
}

void Perturbator::Insert(std::string* value) {
  const size_t pos = rng_.UniformIndex(value->size() + 1);
  value->insert(value->begin() + static_cast<ptrdiff_t>(pos), RandomChar());
}

void Perturbator::Transpose(std::string* value) {
  if (value->size() < 2) return;
  const size_t pos = rng_.UniformIndex(value->size() - 1);
  std::swap((*value)[pos], (*value)[pos + 1]);
}

void Perturbator::ApplyRandomOp(std::string* value) {
  switch (rng_.UniformUint64(4)) {
    case 0:
      Substitute(value);
      break;
    case 1:
      Delete(value);
      break;
    case 2:
      Insert(value);
      break;
    default:
      Transpose(value);
      break;
  }
}

Record Perturbator::PerturbRecord(const Record& base, RecordId new_id) {
  Record copy = base;
  copy.id = new_id;
  if (copy.fields.empty()) return copy;
  const int span = max_ops_ - min_ops_;
  const int ops =
      min_ops_ + (span > 0
                      ? static_cast<int>(rng_.UniformUint64(
                            static_cast<uint64_t>(span) + 1))
                      : 0);
  for (int i = 0; i < ops; ++i) {
    // Typos hit longer fields more often: pick the target field with
    // probability proportional to its current length (position-uniform
    // corruption over the whole record).
    size_t total_length = 0;
    for (const std::string& field : copy.fields) total_length += field.size();
    std::string* target = &copy.fields[rng_.UniformIndex(copy.fields.size())];
    if (total_length > 0) {
      uint64_t roll = rng_.UniformUint64(total_length);
      for (std::string& field : copy.fields) {
        if (roll < field.size()) {
          target = &field;
          break;
        }
        roll -= field.size();
      }
    }
    ApplyRandomOp(target);
  }
  return copy;
}

}  // namespace sketchlink::datagen

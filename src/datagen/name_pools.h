#ifndef SKETCHLINK_DATAGEN_NAME_POOLS_H_
#define SKETCHLINK_DATAGEN_NAME_POOLS_H_

#include <cstddef>
#include <string_view>

namespace sketchlink::datagen {

/// Value pools backing the synthetic data sets. The three generators draw
/// from these with Zipf-skewed frequencies so that blocking keys exhibit the
/// hot/cold distribution of real name data (a handful of "JOHNSON"-sized
/// blocks plus a long tail), which is the property SkipBloom's sampling and
/// SBlockSketch's eviction policy are sensitive to.
struct Pool {
  const std::string_view* values;
  size_t size;
};

/// US-census style surnames (high-frequency first).
Pool Surnames();

/// Given names.
Pool GivenNames();

/// Town names (NCVR-like).
Pool Towns();

/// Street names for address synthesis.
Pool Streets();

/// Venue names (DBLP-like).
Pool Venues();

/// Title/keyword words used to build author bibliographies.
Pool TitleWords();

/// Laboratory assay names (LAB-like: albumin, hepatitis, creatinine, ...).
Pool Assays();

/// Assay result tokens (numeric ranges, positive/negative, units).
Pool AssayResults();

}  // namespace sketchlink::datagen

#endif  // SKETCHLINK_DATAGEN_NAME_POOLS_H_

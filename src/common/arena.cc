#include "common/arena.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define SKETCHLINK_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SKETCHLINK_HAS_ASAN 1
#endif
#endif

#ifdef SKETCHLINK_HAS_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace sketchlink {
namespace {

// Recycled/rewound bytes are clobbered with this pattern so a stale view
// reads recognizable garbage even without ASan.
constexpr unsigned char kPoisonByte = 0xCD;

void PoisonRange(void* p, size_t n) {
  if (n == 0) return;
  std::memset(p, kPoisonByte, n);
#ifdef SKETCHLINK_HAS_ASAN
  __asan_poison_memory_region(p, n);
#endif
}

void UnpoisonRange(void* p, size_t n) {
#ifdef SKETCHLINK_HAS_ASAN
  if (n != 0) __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

}  // namespace

struct Arena::Block {
  Block* next;
  size_t capacity;  // payload bytes following the header
  char* payload() { return reinterpret_cast<char*>(this + 1); }
};

Arena::Arena(size_t block_bytes)
    : block_bytes_(block_bytes < 512 ? 512 : block_bytes) {}

Arena::~Arena() {
  Block* b = head_;
  while (b != nullptr) {
    Block* next = b->next;
    UnpoisonRange(b->payload(), b->capacity);
    std::free(b);
    b = next;
  }
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  char* aligned = reinterpret_cast<char*>(
      (reinterpret_cast<uintptr_t>(ptr_) + (align - 1)) & ~uintptr_t(align - 1));
  if (aligned + bytes <= end_) {
    UnpoisonRange(aligned, bytes);
    ptr_ = aligned + bytes;
    bytes_allocated_ += bytes;
    return aligned;
  }
  return AllocateSlow(bytes, align);
}

void* Arena::AllocateSlow(size_t bytes, size_t align) {
  // Requests larger than a block get a dedicated block sized to fit;
  // max_align_t header keeps the payload aligned for any request.
  size_t need = bytes + align;
  size_t cap = need > block_bytes_ ? need : block_bytes_;
  Block* b = nullptr;
  if (current_ != nullptr && current_->next != nullptr &&
      current_->next->capacity >= need) {
    // Reuse a recycled block left over from a previous Reset().
    b = current_->next;
  } else {
    b = static_cast<Block*>(std::malloc(sizeof(Block) + cap));
    if (b == nullptr) throw std::bad_alloc();
    b->capacity = cap;
    // Splice after current_ so the bump chain stays in allocation order.
    if (current_ != nullptr) {
      b->next = current_->next;
      current_->next = b;
    } else {
      b->next = head_;
      head_ = b;
    }
    bytes_reserved_ += cap;
    PoisonRange(b->payload(), b->capacity);
  }
  current_ = b;
  ptr_ = b->payload();
  end_ = ptr_ + b->capacity;
  char* aligned = reinterpret_cast<char*>(
      (reinterpret_cast<uintptr_t>(ptr_) + (align - 1)) & ~uintptr_t(align - 1));
  assert(aligned + bytes <= end_);
  UnpoisonRange(aligned, bytes);
  ptr_ = aligned + bytes;
  bytes_allocated_ += bytes;
  return aligned;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return std::string_view();
  char* dst = static_cast<char*>(Allocate(s.size(), 1));
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

void Arena::Reset() {
  for (Block* b = head_; b != nullptr; b = b->next) {
    UnpoisonRange(b->payload(), b->capacity);
    PoisonRange(b->payload(), b->capacity);
  }
  current_ = head_;
  if (head_ != nullptr) {
    ptr_ = head_->payload();
    end_ = ptr_ + head_->capacity;
  } else {
    ptr_ = end_ = nullptr;
  }
  bytes_allocated_ = 0;
}

void Arena::PoisonTail(Block* block, char* from) {
  Block* b = static_cast<Block*>(static_cast<void*>(block));
  if (b != nullptr) {
    char* block_end = b->payload() + b->capacity;
    if (from >= b->payload() && from <= block_end) {
      UnpoisonRange(from, block_end - from);
      PoisonRange(from, block_end - from);
    }
    b = b->next;
  } else {
    b = head_;
  }
  for (; b != nullptr; b = b->next) {
    UnpoisonRange(b->payload(), b->capacity);
    PoisonRange(b->payload(), b->capacity);
  }
}

Arena::Scope::Scope(Arena* arena)
    : arena_(arena),
      block_(arena->current_),
      ptr_(arena->ptr_),
      allocated_(arena->bytes_allocated_) {}

Arena::Scope::~Scope() {
  Block* block = static_cast<Block*>(block_);
  arena_->PoisonTail(block, ptr_);
  arena_->current_ = block;
  if (block != nullptr) {
    arena_->ptr_ = ptr_;
    arena_->end_ = block->payload() + block->capacity;
  } else {
    // The arena had no blocks yet: rewind fully but keep any blocks that
    // were created inside the scope for reuse.
    arena_->current_ = arena_->head_;
    if (arena_->head_ != nullptr) {
      arena_->ptr_ = arena_->head_->payload();
      arena_->end_ = arena_->ptr_ + arena_->head_->capacity;
    } else {
      arena_->ptr_ = arena_->end_ = nullptr;
    }
  }
  arena_->bytes_allocated_ = allocated_;
}

}  // namespace sketchlink

#ifndef SKETCHLINK_COMMON_EPOCH_HASH_TABLE_H_
#define SKETCHLINK_COMMON_EPOCH_HASH_TABLE_H_

// A single-writer / many-reader hash table protected by epoch-based
// reclamation (common/epoch.h).
//
// Concurrency contract:
//   - Exactly one mutator at a time (callers serialize writes externally,
//     e.g. behind the sketch's write mutex).
//   - Readers call Find()/ForEach() under an epoch::ReadGuard and take no
//     lock. They see a consistent published view: entries are immutable
//     after publish, erased entries are tombstoned (never nulled) so probe
//     chains stay intact, and replaced tables/entries are freed through
//     EpochManager::Retire() only after every possible reader has left.
//   - The writer may also call Find()/ForEach() without a guard while it
//     holds its external write lock (nothing can be retired under it).
//
// Layout: open addressing with linear probing over atomic Entry* slots.
// Erase stores a tombstone sentinel; readers skip tombstones and stop only
// at null, so a slot never transitions entry->null within one table
// generation. Growth (and tombstone compaction) copy-on-write a fresh slot
// array, republish it, and retire the old one; the Entry objects themselves
// are reused across generations.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/hash.h"

namespace sketchlink {

// Key policy for EpochHashTable. Strings look up by string_view (no
// temporary std::string at the call site); interned u32 ids look up by
// value with a finalizer-mixed hash, since interner ids are dense and
// sequential — exactly the distribution naked masking clusters worst.
template <typename Key>
struct EpochKeyTraits;

template <>
struct EpochKeyTraits<std::string> {
  using Lookup = std::string_view;
  static uint64_t Hash(std::string_view key) { return Fnv1a64(key); }
};

template <>
struct EpochKeyTraits<uint32_t> {
  using Lookup = uint32_t;
  static uint64_t Hash(uint32_t key) {
    // splitmix64 finalizer.
    uint64_t x = key + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

template <typename T, typename Key = std::string>
class EpochHashTable {
 public:
  using Traits = EpochKeyTraits<Key>;
  using Lookup = typename Traits::Lookup;

  explicit EpochHashTable(size_t initial_capacity = 16) {
    table_.store(new Table(NormalizeCapacity(initial_capacity)),
                 std::memory_order_release);
  }

  ~EpochHashTable() {
    // Destruction requires quiescence (no concurrent readers), same as any
    // other container. Entries retired earlier are owned by the epoch
    // manager and freed by its reclamation passes.
    Table* table = table_.load(std::memory_order_acquire);
    for (size_t i = 0; i < table->capacity; ++i) {
      Entry* entry = table->slots[i].load(std::memory_order_relaxed);
      if (entry != nullptr && entry != Tombstone()) delete entry;
    }
    delete table;
  }

  EpochHashTable(const EpochHashTable&) = delete;
  EpochHashTable& operator=(const EpochHashTable&) = delete;

  /// Lock-free lookup; caller holds an epoch::ReadGuard (or is the writer).
  /// Returns a shared_ptr copy so the value outlives any concurrent erase.
  std::shared_ptr<T> Find(Lookup key) const {
    const Table* table = table_.load(std::memory_order_acquire);
    const uint64_t hash = Traits::Hash(key);
    for (size_t i = 0; i < table->capacity; ++i) {
      const size_t slot = (hash + i) & table->mask;
      Entry* entry = table->slots[slot].load(std::memory_order_acquire);
      if (entry == nullptr) return nullptr;
      if (entry == Tombstone()) continue;
      if (entry->key == key) return entry->value;
    }
    return nullptr;
  }

  /// Inserts `key` (which must be absent — enforced by callers' probe-first
  /// discipline). Writer only.
  void Insert(Key key, std::shared_ptr<T> value) {
    MaybeGrow();
    Table* table = table_.load(std::memory_order_relaxed);
    const uint64_t hash = Traits::Hash(key);
    for (size_t i = 0; i < table->capacity; ++i) {
      const size_t slot = (hash + i) & table->mask;
      Entry* entry = table->slots[slot].load(std::memory_order_relaxed);
      if (entry == nullptr || entry == Tombstone()) {
        if (entry == nullptr) ++table->used;
        // Publish the fully constructed entry; readers acquire it.
        table->slots[slot].store(new Entry{std::move(key), std::move(value)},
                                 std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Tombstones `key`'s slot and epoch-retires the entry. Writer only.
  bool Erase(Lookup key) {
    Table* table = table_.load(std::memory_order_relaxed);
    const uint64_t hash = Traits::Hash(key);
    for (size_t i = 0; i < table->capacity; ++i) {
      const size_t slot = (hash + i) & table->mask;
      Entry* entry = table->slots[slot].load(std::memory_order_relaxed);
      if (entry == nullptr) return false;
      if (entry == Tombstone()) continue;
      if (entry->key == key) {
        table->slots[slot].store(Tombstone(), std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        epoch::EpochManager::Global().Retire([entry] { delete entry; });
        return true;
      }
    }
    return false;
  }

  /// Live entries (lock-free; consistent-enough for gauges and budgets).
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Visits every live entry as fn(const Key& key, const
  /// std::shared_ptr<T>& value). Same caller contract as Find().
  template <typename Fn>
  void ForEach(Fn fn) const {
    const Table* table = table_.load(std::memory_order_acquire);
    for (size_t i = 0; i < table->capacity; ++i) {
      Entry* entry = table->slots[i].load(std::memory_order_acquire);
      if (entry == nullptr || entry == Tombstone()) continue;
      fn(entry->key, entry->value);
    }
  }

  /// Slot-array capacity (for tests).
  size_t capacity() const {
    return table_.load(std::memory_order_acquire)->capacity;
  }

 private:
  struct Entry {
    const Key key;
    const std::shared_ptr<T> value;  // immutable after publish
  };

  struct Table {
    explicit Table(size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<Entry*>[cap]) {
      for (size_t i = 0; i < cap; ++i) {
        slots[i].store(nullptr, std::memory_order_relaxed);
      }
    }

    const size_t capacity;  // power of two
    const size_t mask;
    size_t used = 0;  // non-null slots (live + tombstones); writer only
    std::unique_ptr<std::atomic<Entry*>[]> slots;
  };

  static Entry* Tombstone() {
    // Sentinel distinct from every real allocation; never dereferenced.
    return reinterpret_cast<Entry*>(static_cast<uintptr_t>(1));
  }

  static size_t NormalizeCapacity(size_t requested) {
    size_t capacity = 16;
    while (capacity < requested) capacity <<= 1;
    return capacity;
  }

  /// Rebuilds into a fresh table when load (live + tombstones) passes 70%.
  /// The rebuild also sheds tombstones, so heavy churn cannot degrade probe
  /// chains indefinitely.
  void MaybeGrow() {
    Table* table = table_.load(std::memory_order_relaxed);
    if ((table->used + 1) * 10 < table->capacity * 7) return;
    const size_t live = size_.load(std::memory_order_relaxed);
    size_t capacity = table->capacity;
    while ((live + 1) * 10 >= capacity * 7) capacity <<= 1;
    Table* fresh = new Table(capacity);
    for (size_t i = 0; i < table->capacity; ++i) {
      Entry* entry = table->slots[i].load(std::memory_order_relaxed);
      if (entry == nullptr || entry == Tombstone()) continue;
      const uint64_t hash = Traits::Hash(entry->key);
      for (size_t j = 0; j < fresh->capacity; ++j) {
        const size_t slot = (hash + j) & fresh->mask;
        if (fresh->slots[slot].load(std::memory_order_relaxed) == nullptr) {
          fresh->slots[slot].store(entry, std::memory_order_relaxed);
          ++fresh->used;
          break;
        }
      }
    }
    table_.store(fresh, std::memory_order_release);
    // The Entry objects moved over; only the old slot array retires.
    epoch::EpochManager::Global().Retire([table] { delete table; });
  }

  std::atomic<Table*> table_{nullptr};
  std::atomic<size_t> size_{0};
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_EPOCH_HASH_TABLE_H_

#ifndef SKETCHLINK_COMMON_STATUS_H_
#define SKETCHLINK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sketchlink {

/// Error taxonomy used across the library. Library code never throws;
/// fallible operations return a Status (or Result<T>, below).
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIOError = 4,
  kAlreadyExists = 5,
  kOutOfRange = 6,
  kFailedPrecondition = 7,
  kResourceExhausted = 8,
  kUnimplemented = 9,
  kInternal = 10,
};

/// Returns the canonical lowercase name of a status code (e.g. "not_found").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic status object: a code plus an optional human-readable
/// message. The OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg = "") {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error discriminated holder, analogous to absl::StatusOr.
/// Either holds a T (status().ok()) or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value yields an OK result.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when not ok.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define SKETCHLINK_RETURN_IF_ERROR(expr)        \
  do {                                          \
    ::sketchlink::Status _st = (expr);          \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_STATUS_H_

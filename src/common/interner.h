#ifndef SKETCHLINK_COMMON_INTERNER_H_
#define SKETCHLINK_COMMON_INTERNER_H_

// String interner: maps each distinct string to a dense 32-bit id.
//
// Blocking keys repeat heavily (every record in a block carries the same
// key), and downstream structures (sketch tables, pending-spill maps,
// eviction queue entries) only need key *identity* plus an occasional
// round-trip back to bytes. Interning collapses those strings to u32 ids:
// hash the bytes once at the boundary, then everything inward compares,
// stores, and hashes 4-byte integers.
//
// Concurrency model (mirrors EpochHashTable): one writer at a time
// (Intern/ids are serialized by an internal mutex), any number of
// concurrent lock-free readers (Find/View). Readers never block and never
// fault: the id→bytes directory is append-only chunked storage with
// acquire/release publication, string bytes live in an arena (stable
// addresses), and the string→id probe table grows copy-on-write with
// retired tables kept alive until destruction (their total size is
// bounded by the geometric growth sum, < one extra copy of the live
// table).
//
// Ids are 1-based and dense in interning order; 0 is kInvalidId. Ids are
// never reused or remapped, so a published id stays valid for the
// interner's lifetime — this is the "id stability" property the TSan test
// hammers.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/arena.h"

namespace sketchlink {

class StringInterner {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalidId = 0;

  StringInterner();
  ~StringInterner();

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id for `s`, interning it first if unseen. Thread-safe
  /// against concurrent Intern/Find/View.
  Id Intern(std::string_view s);

  /// Returns the id for `s`, or kInvalidId if it was never interned.
  /// Lock-free; safe against a concurrent Intern.
  Id Find(std::string_view s) const;

  /// Returns the interned bytes for a valid id. The view is stable for the
  /// interner's lifetime. Lock-free.
  std::string_view View(Id id) const;

  /// Number of interned strings (== the largest id).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Approximate heap footprint (arena + tables + directory).
  size_t ApproximateMemoryUsage() const;

 private:
  struct Entry {
    const char* data;
    uint32_t len;
  };

  // Probe-table slot: id 0 = empty. `hash32` caches the low hash bits so
  // probes reject mismatches without touching the entry bytes.
  struct Slot {
    std::atomic<uint32_t> id;
    uint32_t hash32;
  };

  struct Table {
    size_t capacity;  // power of two
    Slot* slots() { return reinterpret_cast<Slot*>(this + 1); }
    const Slot* slots() const { return reinterpret_cast<const Slot*>(this + 1); }
  };

  // Directory of fixed-size entry chunks; chunk pointers publish with
  // release stores and are never replaced, so readers index without locks.
  static constexpr size_t kChunkShift = 12;  // 4096 entries per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kMaxChunks = 1 << 20;  // 2^32 ids max anyway

  static Table* NewTable(size_t capacity);
  const Entry& EntryFor(Id id) const;
  /// Writer-side: inserts `id` with `hash` into `table`.
  static void InsertSlot(Table* table, uint64_t hash, Id id);

  Arena arena_;                        // string bytes (writer-locked)
  std::atomic<Table*> table_;          // live probe table
  std::vector<Table*> retired_;        // old tables, freed at destruction
  std::atomic<std::atomic<Entry*>*> chunks_;  // directory array
  std::vector<void*> retired_dirs_;    // old directory arrays
  size_t dir_capacity_ = 0;            // slots in chunks_
  std::atomic<size_t> size_{0};
  size_t approx_table_bytes_ = 0;
  mutable std::mutex mu_;              // serializes writers
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_INTERNER_H_

#include "common/interner.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/hash.h"

namespace sketchlink {
namespace {

constexpr uint64_t kHashSeed = 0x1e7e4ed5eedull;
constexpr size_t kInitialCapacity = 64;

uint32_t Hash32(std::string_view s) {
  return static_cast<uint32_t>(Murmur3_64(s, kHashSeed));
}

}  // namespace

StringInterner::Table* StringInterner::NewTable(size_t capacity) {
  void* mem = std::calloc(1, sizeof(Table) + capacity * sizeof(Slot));
  if (mem == nullptr) throw std::bad_alloc();
  Table* t = static_cast<Table*>(mem);
  t->capacity = capacity;  // slots are zeroed: id 0 == empty
  return t;
}

StringInterner::StringInterner() : table_(NewTable(kInitialCapacity)) {
  approx_table_bytes_ = sizeof(Table) + kInitialCapacity * sizeof(Slot);
  constexpr size_t kInitialDir = 16;
  auto* dir = new std::atomic<Entry*>[kInitialDir];
  for (size_t i = 0; i < kInitialDir; ++i) dir[i].store(nullptr, std::memory_order_relaxed);
  dir_capacity_ = kInitialDir;
  chunks_.store(dir, std::memory_order_release);
}

StringInterner::~StringInterner() {
  std::free(table_.load(std::memory_order_relaxed));
  for (Table* t : retired_) std::free(t);
  auto* dir = chunks_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < dir_capacity_; ++i) {
    delete[] dir[i].load(std::memory_order_relaxed);
  }
  delete[] dir;
  for (void* d : retired_dirs_) {
    delete[] static_cast<std::atomic<Entry*>*>(d);
  }
}

const StringInterner::Entry& StringInterner::EntryFor(Id id) const {
  assert(id != kInvalidId);
  size_t index = id - 1;
  const auto* dir = chunks_.load(std::memory_order_acquire);
  const Entry* chunk =
      dir[index >> kChunkShift].load(std::memory_order_acquire);
  return chunk[index & (kChunkSize - 1)];
}

void StringInterner::InsertSlot(Table* table, uint64_t hash, Id id) {
  const uint32_t h32 = static_cast<uint32_t>(hash);
  const size_t mask = table->capacity - 1;
  size_t i = h32 & mask;
  Slot* slots = table->slots();
  while (slots[i].id.load(std::memory_order_relaxed) != 0) {
    i = (i + 1) & mask;
  }
  slots[i].hash32 = h32;
  // Release so a reader that acquires the id also sees hash32 and the
  // directory entry written before this insert.
  slots[i].id.store(id, std::memory_order_release);
}

StringInterner::Id StringInterner::Find(std::string_view s) const {
  const uint32_t h32 = Hash32(s);
  const Table* table = table_.load(std::memory_order_acquire);
  const size_t mask = table->capacity - 1;
  const Slot* slots = table->slots();
  for (size_t i = h32 & mask;; i = (i + 1) & mask) {
    const Id id = slots[i].id.load(std::memory_order_acquire);
    if (id == kInvalidId) return kInvalidId;
    if (slots[i].hash32 == h32) {
      const Entry& e = EntryFor(id);
      if (std::string_view(e.data, e.len) == s) return id;
    }
  }
}

std::string_view StringInterner::View(Id id) const {
  const Entry& e = EntryFor(id);
  return std::string_view(e.data, e.len);
}

StringInterner::Id StringInterner::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  // Re-probe under the lock: another writer may have interned `s` between
  // a caller's optimistic Find and this point.
  const uint32_t h32 = Hash32(s);
  Table* table = table_.load(std::memory_order_relaxed);
  {
    const size_t mask = table->capacity - 1;
    Slot* slots = table->slots();
    for (size_t i = h32 & mask;; i = (i + 1) & mask) {
      const Id id = slots[i].id.load(std::memory_order_relaxed);
      if (id == kInvalidId) break;
      if (slots[i].hash32 == h32) {
        const Entry& e = EntryFor(id);
        if (std::string_view(e.data, e.len) == s) return id;
      }
    }
  }

  const size_t count = size_.load(std::memory_order_relaxed);
  const Id id = static_cast<Id>(count + 1);
  const size_t index = count;

  // Publish the entry bytes before the id becomes findable.
  std::string_view stored = arena_.CopyString(s);
  const size_t chunk_index = index >> kChunkShift;
  auto* dir = chunks_.load(std::memory_order_relaxed);
  if (chunk_index >= dir_capacity_) {
    size_t new_cap = dir_capacity_ * 2;
    auto* grown = new std::atomic<Entry*>[new_cap];
    for (size_t i = 0; i < dir_capacity_; ++i) {
      grown[i].store(dir[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    for (size_t i = dir_capacity_; i < new_cap; ++i) {
      grown[i].store(nullptr, std::memory_order_relaxed);
    }
    retired_dirs_.push_back(dir);  // readers may still hold the old array
    chunks_.store(grown, std::memory_order_release);
    dir_capacity_ = new_cap;
    dir = grown;
  }
  Entry* chunk = dir[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize]();
    dir[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk[index & (kChunkSize - 1)] = Entry{stored.data(),
                                          static_cast<uint32_t>(stored.size())};

  // Grow the probe table copy-on-write at 70% load; the old table stays
  // readable (it holds every id except this one) until destruction.
  if ((count + 1) * 10 >= table->capacity * 7) {
    Table* grown = NewTable(table->capacity * 2);
    Slot* old_slots = table->slots();
    for (size_t i = 0; i < table->capacity; ++i) {
      const Id old_id = old_slots[i].id.load(std::memory_order_relaxed);
      if (old_id != kInvalidId) {
        InsertSlot(grown, old_slots[i].hash32, old_id);
      }
    }
    approx_table_bytes_ += sizeof(Table) + grown->capacity * sizeof(Slot);
    retired_.push_back(table);
    table_.store(grown, std::memory_order_release);
    table = grown;
  }

  InsertSlot(table, h32, id);
  size_.store(count + 1, std::memory_order_release);
  return id;
}

size_t StringInterner::ApproximateMemoryUsage() const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = size_.load(std::memory_order_relaxed);
  const size_t chunks = (count + kChunkSize - 1) >> kChunkShift;
  return arena_.bytes_reserved() + approx_table_bytes_ +
         chunks * kChunkSize * sizeof(Entry) +
         dir_capacity_ * sizeof(std::atomic<Entry*>);
}

}  // namespace sketchlink

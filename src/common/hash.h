#ifndef SKETCHLINK_COMMON_HASH_H_
#define SKETCHLINK_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace sketchlink {

/// 64-bit FNV-1a. Cheap and adequate for hash-table bucketing.
uint64_t Fnv1a64(std::string_view data);

/// MurmurHash3 x64 finalizer-quality 64-bit hash with a seed. This is the
/// workhorse for Bloom filters and LSH position sampling.
uint64_t Murmur3_64(std::string_view data, uint64_t seed);

/// 128-bit MurmurHash3 (x64 variant) returning both halves. Bloom filters
/// derive all k probe positions from one 128-bit hash via double hashing
/// (Kirsch & Mitzenmacher), so each membership test costs one string hash.
std::pair<uint64_t, uint64_t> Murmur3_128(std::string_view data,
                                          uint64_t seed);

/// Double-hashing probe sequence: position i = h1 + i*h2 (mod range).
/// Guarantees h2 is odd so the sequence cycles through the full range when
/// `range` is a power of two.
class DoubleHasher {
 public:
  DoubleHasher(std::string_view data, uint64_t seed) {
    auto [h1, h2] = Murmur3_128(data, seed);
    h1_ = h1;
    h2_ = h2 | 1;
  }

  /// Returns the i-th probe position modulo `range`.
  uint64_t Probe(uint32_t i, uint64_t range) const {
    return (h1_ + static_cast<uint64_t>(i) * h2_) % range;
  }

 private:
  uint64_t h1_;
  uint64_t h2_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_HASH_H_

#ifndef SKETCHLINK_COMMON_CODING_H_
#define SKETCHLINK_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sketchlink {

/// Little-endian binary codecs used by the key/value store's on-disk formats
/// (WAL records, SSTable blocks, manifest entries). All "Get" functions
/// consume from the front of `*input` and return false on underflow or
/// malformed varints, leaving `*input` unspecified.

/// Appends a fixed-width 32-bit little-endian value.
void PutFixed32(std::string* dst, uint32_t value);

/// Appends a fixed-width 64-bit little-endian value.
void PutFixed64(std::string* dst, uint64_t value);

/// Decodes a fixed 32-bit value from the first 4 bytes of `p`.
uint32_t DecodeFixed32(const char* p);

/// Decodes a fixed 64-bit value from the first 8 bytes of `p`.
uint64_t DecodeFixed64(const char* p);

/// Consumes a fixed 32-bit value from `*input`.
bool GetFixed32(std::string_view* input, uint32_t* value);

/// Consumes a fixed 64-bit value from `*input`.
bool GetFixed64(std::string_view* input, uint64_t* value);

/// Appends a varint-encoded 32-bit value (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);

/// Appends a varint-encoded 64-bit value (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Consumes a varint32 from `*input`.
bool GetVarint32(std::string_view* input, uint32_t* value);

/// Consumes a varint64 from `*input`.
bool GetVarint64(std::string_view* input, uint64_t* value);

/// Appends varint32(size) followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Consumes a length-prefixed slice; `*value` aliases the input buffer.
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Number of bytes PutVarint64 would emit for `value`.
int VarintLength(uint64_t value);

/// CRC32C (Castagnoli) over `data`; software table-driven implementation.
/// Used to checksum WAL records and SSTable blocks.
uint32_t Crc32c(std::string_view data);

/// Extends a running CRC32C with more data.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_CODING_H_

#ifndef SKETCHLINK_COMMON_RANDOM_H_
#define SKETCHLINK_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace sketchlink {

/// SplitMix64: tiny, fast, well-mixed 64-bit generator. Used for seeding and
/// as the library-wide deterministic RNG (experiments must be reproducible,
/// so all randomized components take an explicit seed).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Returns the next 32 pseudo-random bits.
  uint32_t NextUint32() { return static_cast<uint32_t>(NextUint64() >> 32); }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformUint64(uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping; the bias is < 2^-64
    // per draw, negligible for our workloads.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextUint64()) * bound) >> 64);
  }

  /// Returns a uniform size_t index in [0, bound).
  size_t UniformIndex(size_t bound) {
    return static_cast<size_t>(UniformUint64(bound));
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fair coin toss.
  bool CoinFlip() { return (NextUint64() & 1) != 0; }

  /// Samples a geometric "skip count": the number of failures before the
  /// first success in Bernoulli(p) trials. Used by reservoir/Bernoulli
  /// samplers to avoid one RNG call per stream element (Haas, data-stream
  /// sampling; referenced by the paper in Sec. 4).
  uint64_t GeometricSkip(double p);

 private:
  uint64_t state_;
};

/// Streaming Bernoulli sampler with geometric skips: decides for each element
/// of a stream whether it is sampled with probability p, using O(1) amortized
/// RNG work (one geometric draw per accepted element instead of one uniform
/// draw per element). This is the sampling routine of SkipBloom's insert path
/// (Algorithm 2, line 1).
class BernoulliSampler {
 public:
  /// `p` is the per-element inclusion probability, clamped to [0, 1].
  BernoulliSampler(double p, uint64_t seed);

  /// Returns true iff the current element is sampled, and advances the
  /// stream position by one.
  bool NextSample();

  /// Inclusion probability.
  double p() const { return p_; }

  /// Number of elements seen so far.
  uint64_t seen() const { return seen_; }

  /// Number of elements sampled so far.
  uint64_t sampled() const { return sampled_; }

 private:
  double p_;
  Rng rng_;
  uint64_t seen_ = 0;
  uint64_t sampled_ = 0;
  uint64_t next_pick_ = 0;  // absolute index of the next sampled element
};

/// Zipf-distributed integer sampler over {0, ..., n-1} with exponent s.
/// Uses the rejection-inversion method of Hörmann & Derflinger, so setup is
/// O(1) and each draw is O(1) expected, independent of n. Used by the data
/// generators to model skewed blocking-key frequencies.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` is the skew (s = 0 degenerates to uniform).
  ZipfSampler(uint64_t n, double s, uint64_t seed);

  /// Draws one value in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double u) const;

  uint64_t n_;
  double s_;
  Rng rng_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_RANDOM_H_

#ifndef SKETCHLINK_COMMON_MAINTENANCE_QUEUE_H_
#define SKETCHLINK_COMMON_MAINTENANCE_QUEUE_H_

// A single-worker background job queue for structure maintenance (eviction
// spills, compactions). Jobs run strictly in submission order on one
// dedicated thread, so consumers get FIFO write-behind semantics without
// per-job thread overhead. The worker thread starts lazily on the first
// Submit and joins in the destructor after draining every queued job;
// cancellation is the submitter's job (submit closures that re-check their
// preconditions).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace sketchlink {

class MaintenanceQueue {
 public:
  MaintenanceQueue() = default;
  ~MaintenanceQueue();

  MaintenanceQueue(const MaintenanceQueue&) = delete;
  MaintenanceQueue& operator=(const MaintenanceQueue&) = delete;

  /// Enqueues `job` behind every previously submitted job.
  void Submit(std::function<void()> job);

  /// Blocks until every job submitted before this call has finished.
  void Drain();

  /// Jobs queued but not yet started (approximate).
  size_t depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable wake_cv_;   // worker waits for jobs / stop
  std::condition_variable drain_cv_;  // Drain waits for idle
  std::deque<std::function<void()>> jobs_;
  std::thread worker_;
  bool started_ = false;
  bool stop_ = false;
  bool busy_ = false;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_MAINTENANCE_QUEUE_H_

#include "common/epoch.h"

#include <thread>

namespace sketchlink::epoch {

namespace {

/// Per-thread slot cache. The slot is returned to the manager's free list
/// when the thread exits; the manager is leaked, so the destructor ordering
/// is safe even for threads outliving main().
struct TlsSlot {
  EpochManager::Slot* slot = nullptr;
  uint64_t depth = 0;

  ~TlsSlot();
};

thread_local TlsSlot tls_slot;

}  // namespace

EpochManager& EpochManager::Global() {
  static EpochManager* manager = new EpochManager();
  return *manager;
}

EpochManager::Slot* EpochManager::AcquireSlot() {
  std::lock_guard<std::mutex> lock(slots_mu_);
  if (!free_slots_.empty()) {
    Slot* slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(std::make_unique<Slot>());
  return slots_.back().get();
}

void EpochManager::ReleaseSlot(Slot* slot) {
  slot->epoch.store(kIdle, std::memory_order_release);
  std::lock_guard<std::mutex> lock(slots_mu_);
  free_slots_.push_back(slot);
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = UINT64_MAX;
  std::lock_guard<std::mutex> lock(slots_mu_);
  for (const auto& slot : slots_) {
    const uint64_t e = slot->epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochManager::CollectReadyLocked(std::vector<Retiree>* ready) {
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t min_active = MinActiveEpoch();
  size_t kept = 0;
  for (Retiree& retiree : retired_) {
    if (retiree.epoch < min_active) {
      ready->push_back(std::move(retiree));
    } else {
      retired_[kept++] = std::move(retiree);
    }
  }
  retired_.resize(kept);
}

void EpochManager::Retire(std::function<void()> reclaim) {
  std::vector<Retiree> ready;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    retired_.push_back(
        Retiree{global_epoch_.load(std::memory_order_seq_cst),
                std::move(reclaim)});
    if (retired_.size() >= kReclaimBatch) CollectReadyLocked(&ready);
  }
  // Deleters run outside retire_mu_ so a deleter touching the manager (it
  // should not, but defensively) cannot deadlock.
  for (Retiree& retiree : ready) retiree.reclaim();
}

void EpochManager::Flush() {
  for (;;) {
    std::vector<Retiree> ready;
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      if (retired_.empty()) return;
      CollectReadyLocked(&ready);
    }
    for (Retiree& retiree : ready) retiree.reclaim();
    if (ready.empty()) std::this_thread::yield();  // a reader is in-flight
  }
}

size_t EpochManager::pending_retired() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

namespace {

TlsSlot::~TlsSlot() {
  if (slot != nullptr) EpochManager::Global().ReleaseSlot(slot);
}

}  // namespace

ReadGuard::ReadGuard() {
  TlsSlot& tls = tls_slot;
  if (tls.slot == nullptr) tls.slot = EpochManager::Global().AcquireSlot();
  slot_ = tls.slot;
  outermost_ = tls.depth++ == 0;
  if (!outermost_) return;
  EpochManager& manager = EpochManager::Global();
  uint64_t e = manager.global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot_->epoch.store(e, std::memory_order_seq_cst);
    const uint64_t current =
        manager.global_epoch_.load(std::memory_order_seq_cst);
    if (current == e) break;  // published epoch is current: reclaimers see us
    e = current;
  }
}

ReadGuard::~ReadGuard() {
  --tls_slot.depth;
  if (outermost_) {
    slot_->epoch.store(EpochManager::kIdle, std::memory_order_release);
  }
}

}  // namespace sketchlink::epoch

#ifndef SKETCHLINK_COMMON_ARENA_H_
#define SKETCHLINK_COMMON_ARENA_H_

// Bump-pointer arena with scoped lifetimes.
//
// The hot pipeline (record storage, interned key bytes, SoA representative
// chunks) allocates many small, never-individually-freed objects whose
// lifetime is the lifetime of a larger unit (a dataset, an index, a scratch
// scope). A general-purpose heap pays per-allocation metadata, locks and
// pointer chasing for that pattern; the arena pays one pointer bump and
// keeps neighbours contiguous, which is where the end-to-end wins of the
// memory-layout overhaul come from (DESIGN.md §12).
//
// Contracts:
//   - Allocation never moves previously returned memory: blocks are chained,
//     not reallocated, so views into the arena stay valid until Reset() or
//     destruction. This is what makes zero-copy RecordViews safe against
//     concurrent appends (the std::vector backing they replace reallocates).
//   - Reset() recycles every block for reuse and poisons the recycled bytes:
//     under ASan the old ranges become addressable-but-poisoned so stale
//     views fault loudly; without ASan they are clobbered with 0xCD so
//     use-after-reset reads surface as garbage rather than silently working.
//   - Scope (RAII) rewinds the arena to its construction point, giving
//     per-query scratch lifetimes without per-query frees.
//   - Not internally synchronized: one arena per writer, or external locking
//     (RecordStore wraps its arena in the store mutex).

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sketchlink {

class Arena {
 public:
  /// `block_bytes` is the granularity of backing allocations; oversized
  /// requests get a dedicated block.
  explicit Arena(size_t block_bytes = 64 * 1024);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power
  /// of two, at most alignof(std::max_align_t)).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view CopyString(std::string_view s);

  /// Typed array of `n` default-constructible Ts. T must be trivially
  /// destructible: the arena never runs destructors.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Recycles every block for reuse and poisons their payload bytes (see
  /// file comment). All previously returned pointers become invalid.
  void Reset();

  /// Bytes handed out since construction/Reset (for accounting).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total backing-block bytes currently owned (allocated + headroom).
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// RAII rewind point: on destruction the arena forgets everything
  /// allocated after the Scope was constructed and poisons those bytes.
  /// Scopes must nest (destroy in reverse construction order).
  class Scope {
   public:
    explicit Scope(Arena* arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena* arena_;
    void* block_;       // current block at construction
    char* ptr_;         // bump pointer at construction
    size_t allocated_;  // accounting at construction
  };

 private:
  struct Block;

  /// Slow path: finds/creates a block with room for `bytes`.
  void* AllocateSlow(size_t bytes, size_t align);

  /// Poisons [from, block end) of `block` and every later block's payload.
  void PoisonTail(Block* block, char* from);

  Block* head_ = nullptr;     // chain of all owned blocks
  Block* current_ = nullptr;  // block being bumped
  char* ptr_ = nullptr;       // next free byte in current_
  char* end_ = nullptr;       // one past current_'s payload
  size_t block_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_ARENA_H_

#ifndef SKETCHLINK_COMMON_THREAD_POOL_H_
#define SKETCHLINK_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

// Header-only instruments: no link dependency on sketchlink_obs, so the
// library layering (obs links common) stays acyclic. Registration with a
// registry happens in higher layers (the engine), which link obs properly.
// trace_context.h is likewise header-only: the pool copies the submitting
// thread's TraceContext into each batch (never dereferencing it), which is
// how spans created inside shard functions parent to the submitting query.
#include "obs/instruments.h"
#include "obs/trace_context.h"

namespace sketchlink {

/// Live instruments of one ThreadPool. The queue-depth gauge always tracks
/// (two relaxed updates per batch + one per shard); the batch-latency
/// histogram only receives samples after EnableLatencyTiming.
struct ThreadPoolMetrics {
  obs::Counter batches;          // RunShards batches submitted
  obs::Counter shards;           // shards executed across all batches
  obs::Gauge queue_depth;        // shards submitted but not yet completed
  obs::Histogram batch_latency_nanos;  // RunShards wall time per batch
};

/// Fixed-size worker pool driving the parallel linkage pipeline.
///
/// Work is always submitted as a batch of independent shards and partitioned
/// statically: the shard boundaries depend only on the shard count, never on
/// thread scheduling. Callers that need reproducible results therefore only
/// have to make each *shard* deterministic; which OS thread happens to
/// execute a shard is irrelevant. The calling thread participates in every
/// batch, so a pool constructed with N threads applies N-way parallelism
/// using N-1 background workers.
///
/// Exception-safe: the first exception thrown by a shard is captured and
/// rethrown on the calling thread after every shard of the batch has
/// finished (no shard is left half-running).
class ThreadPool {
 public:
  /// Creates a pool applying `num_threads`-way parallelism (the calling
  /// thread counts as one). 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree (background workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(shard) for every shard in [0, num_shards), blocking until all
  /// shards completed. Shards are claimed dynamically but each runs exactly
  /// once; the calling thread participates.
  void RunShards(size_t num_shards, const std::function<void(size_t)>& fn);

  /// Chunked parallel-for over [0, n): calls fn(begin, end) on contiguous
  /// chunks, one chunk per thread (balanced static partition). fn(0, n) when
  /// the pool is sequential.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& fn);

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static size_t DefaultThreads();

  /// Live instruments (higher layers register read closures over these).
  const ThreadPoolMetrics& metrics() const { return metrics_; }

  /// Arms per-batch latency measurement (one extra clock pair per batch).
  /// Safe to call concurrently with running batches.
  void EnableLatencyTiming() {
    timing_enabled_.store(true, std::memory_order_relaxed);
  }

 private:
  // One submitted batch. Heap-allocated and shared with the workers so a
  // worker that wakes late (after the batch completed and a new one was
  // submitted) still claims from ITS batch's exhausted counters instead of
  // stealing shards from the new batch.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;  // owned by RunShards
    size_t total = 0;
    std::atomic<size_t> next_shard{0};
    std::atomic<size_t> completed{0};
    std::exception_ptr error;  // first thrown; guarded by pool mutex_
    // The submitter's ambient trace, installed on every draining thread so
    // shard-side spans parent to the span that called RunShards. Written
    // before the batch is published, read-only afterwards.
    obs::TraceContext trace_context;
  };

  void WorkerLoop();
  /// Claims and runs shards of `batch` until it is exhausted.
  void DrainBatch(const std::shared_ptr<Batch>& batch);

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a new batch is available
  std::condition_variable done_cv_;  // submitter: the batch completed
  bool shutdown_ = false;
  uint64_t batch_generation_ = 0;          // guarded by mutex_
  std::shared_ptr<Batch> current_batch_;   // guarded by mutex_

  std::vector<std::thread> workers_;

  mutable ThreadPoolMetrics metrics_;
  std::atomic<bool> timing_enabled_{false};
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_THREAD_POOL_H_

#ifndef SKETCHLINK_COMMON_POOL_H_
#define SKETCHLINK_COMMON_POOL_H_

// Slab pool for fixed-size nodes.
//
// Backs allocation-churny structures whose nodes are freed individually but
// share one size class (pending-spill entries, scratch chunks). Nodes come
// from slabs carved out of a few large mallocs; the free list is intrusive,
// so a free costs one pointer write and an allocate one pointer read.
//
// Every node carries a one-word state tag ahead of the payload, so
// Free() detects double-frees and foreign pointers deterministically and
// aborts instead of corrupting the free list — the property test relies on
// this being always-on, not an ASan-only behavior.
//
// Not internally synchronized; callers lock around a shared pool.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace sketchlink {

template <typename T>
class Pool {
 public:
  explicit Pool(size_t nodes_per_slab = 256)
      : nodes_per_slab_(nodes_per_slab < 8 ? 8 : nodes_per_slab) {}

  ~Pool() {
    Slab* s = slabs_;
    while (s != nullptr) {
      Slab* next = s->next;
      std::free(s);
      s = next;
    }
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Constructs a T in pooled storage.
  template <typename... Args>
  T* New(Args&&... args) {
    Node* n = free_list_;
    if (n != nullptr) {
      free_list_ = n->next_free;
    } else {
      n = NewSlabNode();
    }
    n->state = kLive;
    ++live_;
    return new (n->payload) T(std::forward<Args>(args)...);
  }

  /// Destroys `t` and returns its node to the free list. Aborts on a
  /// double-free or a pointer that did not come from this pool's New().
  void Free(T* t) {
    Node* n = reinterpret_cast<Node*>(reinterpret_cast<char*>(t) -
                                      offsetof(Node, payload));
    if (n->state != kLive) {
      std::fprintf(stderr,
                   "Pool::Free: %s of node %p (state=0x%llx)\n",
                   n->state == kFree ? "double-free" : "foreign pointer", (void*)t,
                   (unsigned long long)n->state);
      std::abort();
    }
    t->~T();
    n->state = kFree;
    n->next_free = free_list_;
    free_list_ = n;
    --live_;
  }

  size_t live() const { return live_; }
  size_t capacity() const { return slab_count_ * nodes_per_slab_; }

 private:
  static constexpr uint64_t kLive = 0xA11C0DEDA11C0DEDull;
  static constexpr uint64_t kFree = 0xDEADBEEFDEADBEEFull;

  struct Node {
    uint64_t state;
    Node* next_free;  // valid only while state == kFree
    alignas(alignof(T)) unsigned char payload[sizeof(T)];
  };

  struct Slab {
    Slab* next;
    // Nodes follow the header.
  };

  Node* NewSlabNode() {
    Slab* s = static_cast<Slab*>(
        std::malloc(sizeof(Slab) + sizeof(Node) * nodes_per_slab_));
    if (s == nullptr) throw std::bad_alloc();
    s->next = slabs_;
    slabs_ = s;
    ++slab_count_;
    Node* nodes = reinterpret_cast<Node*>(s + 1);
    // Chain all but the first node onto the free list; return the first.
    for (size_t i = nodes_per_slab_ - 1; i >= 1; --i) {
      nodes[i].state = kFree;
      nodes[i].next_free = free_list_;
      free_list_ = &nodes[i];
    }
    return &nodes[0];
  }

  size_t nodes_per_slab_;
  Node* free_list_ = nullptr;
  Slab* slabs_ = nullptr;
  size_t slab_count_ = 0;
  size_t live_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_POOL_H_

#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace sketchlink {

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainBatch(const std::shared_ptr<Batch>& batch) {
  // Both workers and the submitter drain through here; re-installing the
  // submitter's own context on the submitting thread is a harmless copy.
  obs::ScopedTraceContext trace_scope(batch->trace_context);
  for (;;) {
    const size_t shard =
        batch->next_shard.fetch_add(1, std::memory_order_relaxed);
    if (shard >= batch->total) return;
    // A successful claim implies the submitter is still blocked in
    // RunShards (it leaves only once `completed == total`, and this shard
    // has not completed), so dereferencing `fn` is safe.
    try {
      (*batch->fn)(shard);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch->error) batch->error = std::current_exception();
    }
    metrics_.shards.Inc();
    metrics_.queue_depth.Sub(1);
    if (batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->total) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || batch_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = batch_generation_;
      batch = current_batch_;
    }
    if (batch != nullptr) DrainBatch(batch);
  }
}

void ThreadPool::RunShards(size_t num_shards,
                           const std::function<void(size_t)>& fn) {
  if (num_shards == 0) return;
  obs::LatencyTimer timer(timing_enabled_.load(std::memory_order_relaxed)
                              ? &metrics_.batch_latency_nanos
                              : nullptr);
  metrics_.batches.Inc();
  metrics_.queue_depth.Add(static_cast<int64_t>(num_shards));
  if (workers_.empty() || num_shards == 1) {
    for (size_t shard = 0; shard < num_shards; ++shard) {
      try {
        fn(shard);
      } catch (...) {
        // Unwind the depth for this and the never-started shards so the
        // gauge does not drift on the exception path.
        metrics_.queue_depth.Sub(static_cast<int64_t>(num_shards - shard));
        throw;
      }
      metrics_.shards.Inc();
      metrics_.queue_depth.Sub(1);
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->total = num_shards;
  batch->trace_context = obs::CurrentTraceContext();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_batch_ = batch;
    ++batch_generation_;
  }
  work_cv_.notify_all();

  DrainBatch(batch);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch->completed.load(std::memory_order_acquire) ==
             batch->total;
    });
    if (current_batch_ == batch) current_batch_ = nullptr;
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(num_threads(), n);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  RunShards(chunks, [&](size_t chunk) {
    // Balanced static partition: chunk c covers [c*n/C, (c+1)*n/C).
    const size_t begin = chunk * n / chunks;
    const size_t end = (chunk + 1) * n / chunks;
    if (begin < end) fn(begin, end);
  });
}

}  // namespace sketchlink

#ifndef SKETCHLINK_COMMON_EPOCH_H_
#define SKETCHLINK_COMMON_EPOCH_H_

// Epoch-based reclamation (EBR) for read-mostly structures.
//
// Writers that unlink a node from a shared structure cannot free it while
// lock-free readers may still hold a pointer to it. Instead they hand the
// node to EpochManager::Retire(), which defers the free until every reader
// that could possibly have seen the node has finished its critical section.
//
// Protocol:
//   - A reader wraps each critical section in an epoch::ReadGuard. On entry
//     the guard publishes the current global epoch into the thread's slot;
//     on exit it marks the slot idle. Guards nest (only the outermost
//     publishes).
//   - A writer removes the node from the structure first (so no NEW reader
//     can find it), then calls Retire() with a deleter. The retiree is
//     tagged with the global epoch at retire time.
//   - Reclamation (amortized over Retire calls, or forced via Flush) bumps
//     the global epoch and frees every retiree whose tag is strictly below
//     the minimum epoch published by any active reader.
//
// Why this is safe: slot publication and the global-epoch loads use
// sequentially consistent ordering, so for any reader R active at the time
// a node is retired, R's published slot epoch is <= the epoch the retiree
// was tagged with (R read the global epoch no later than the retirer did).
// A retiree is freed only when min(active slot epochs) exceeds its tag,
// which therefore excludes every reader that could hold the pointer. The
// guard's entry loop re-reads the global epoch after publishing and
// re-publishes if it moved, closing the window where a reader observes an
// old epoch value but publishes it after a concurrent reclaim scanned the
// slots.
//
// The manager is a process-wide leaked singleton: retirees still queued at
// exit stay reachable through it, so LeakSanitizer does not flag them.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace sketchlink::epoch {

class EpochManager {
 public:
  /// The process-wide manager (leaked, never destroyed).
  static EpochManager& Global();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Defers `reclaim` until every reader active now has left its critical
  /// section. Callable from any thread (including while holding write
  /// locks); `reclaim` runs later on whichever thread triggers the
  /// reclamation pass and must not call Retire or take a ReadGuard.
  void Retire(std::function<void()> reclaim);

  /// Forces reclamation passes until the retire list is empty, yielding to
  /// in-flight readers. Must not be called while the calling thread holds a
  /// ReadGuard (it would wait on itself). Intended for tests and teardown.
  void Flush();

  /// Retirees whose deleters have not run yet (approximate; for tests).
  size_t pending_retired() const;

  /// Current global epoch (for tests/diagnostics).
  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  // --- implementation surface shared with ReadGuard / the TLS cache ---

  // A slot epoch of kIdle means "no critical section in this thread".
  static constexpr uint64_t kIdle = 0;

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  Slot* AcquireSlot();
  void ReleaseSlot(Slot* slot);

 private:
  friend class ReadGuard;

  // Reclamation is attempted once this many retirees have queued up.
  static constexpr size_t kReclaimBatch = 64;

  struct Retiree {
    uint64_t epoch;
    std::function<void()> reclaim;
  };

  EpochManager() = default;

  /// Smallest epoch published by any active reader, or UINT64_MAX when all
  /// slots are idle.
  uint64_t MinActiveEpoch() const;

  /// Bumps the global epoch, then moves every retiree tagged below the new
  /// minimum active epoch into `*ready`. Caller runs the deleters outside
  /// the lock. Requires retire_mu_.
  void CollectReadyLocked(std::vector<Retiree>* ready);

  std::atomic<uint64_t> global_epoch_{1};

  mutable std::mutex slots_mu_;
  std::vector<std::unique_ptr<Slot>> slots_;   // all ever created
  std::vector<Slot*> free_slots_;              // released by exited threads

  mutable std::mutex retire_mu_;
  std::vector<Retiree> retired_;
};

/// RAII critical-section marker for epoch-protected reads. Cheap: one
/// seq_cst store + loads on entry of the outermost guard, one release store
/// on exit. Guards nest within a thread.
class ReadGuard {
 public:
  ReadGuard();
  ~ReadGuard();

  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  EpochManager::Slot* slot_;
  bool outermost_;
};

}  // namespace sketchlink::epoch

#endif  // SKETCHLINK_COMMON_EPOCH_H_

#include "common/memory_tracker.h"

#include <cstdio>

namespace sketchlink {

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace sketchlink

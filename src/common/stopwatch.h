#ifndef SKETCHLINK_COMMON_STOPWATCH_H_
#define SKETCHLINK_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace sketchlink {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Elapsed time in microseconds.
  uint64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }

  /// Elapsed time in milliseconds.
  uint64_t ElapsedMillis() const { return ElapsedNanos() / 1000000; }

  /// Elapsed time in seconds as a double.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_STOPWATCH_H_

#include "common/random.h"

#include <algorithm>
#include <cassert>

namespace sketchlink {

uint64_t Rng::GeometricSkip(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return UINT64_MAX;
  // Inverse-CDF sampling: skip = floor(log(U) / log(1 - p)).
  double u = NextDouble();
  // Guard against u == 0 (log(0) = -inf).
  if (u <= 0.0) u = 0x1.0p-53;
  double skip = std::floor(std::log(u) / std::log1p(-p));
  if (skip >= 9.0e18) return UINT64_MAX;
  return static_cast<uint64_t>(skip);
}

BernoulliSampler::BernoulliSampler(double p, uint64_t seed)
    : p_(std::clamp(p, 0.0, 1.0)), rng_(seed) {
  next_pick_ = rng_.GeometricSkip(p_);
}

bool BernoulliSampler::NextSample() {
  const uint64_t index = seen_++;
  if (index != next_pick_) return false;
  ++sampled_;
  const uint64_t skip = rng_.GeometricSkip(p_);
  next_pick_ = (skip == UINT64_MAX) ? UINT64_MAX : index + 1 + skip;
  return true;
}

ZipfSampler::ZipfSampler(uint64_t n, double s, uint64_t seed)
    : n_(std::max<uint64_t>(n, 1)), s_(std::max(s, 0.0)), rng_(seed) {
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

// H(x) = integral of x^-s; handles the s == 1 singularity with log.
double ZipfSampler::H(double x) const {
  if (std::abs(s_ - 1.0) < 1e-9) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double u) const {
  if (std::abs(s_ - 1.0) < 1e-9) return std::exp(u);
  return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Next() {
  if (s_ == 0.0) return rng_.UniformUint64(n_);  // uniform special case
  while (true) {
    const double u = h_n_ + rng_.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    const uint64_t k = static_cast<uint64_t>(
        std::clamp(x + 0.5, 1.0, static_cast<double>(n_)));
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // shift to zero-based
    }
  }
}

}  // namespace sketchlink

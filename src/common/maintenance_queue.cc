#include "common/maintenance_queue.h"

#include <utility>

namespace sketchlink {

MaintenanceQueue::~MaintenanceQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void MaintenanceQueue::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
    if (!started_) {
      started_ = true;
      worker_ = std::thread([this] { WorkerLoop(); });
    }
  }
  wake_cv_.notify_one();
}

void MaintenanceQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return jobs_.empty() && !busy_; });
}

size_t MaintenanceQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

void MaintenanceQueue::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
    if (jobs_.empty()) {
      // stop_ set and nothing left: queued jobs always drain before exit.
      return;
    }
    std::function<void()> job = std::move(jobs_.front());
    jobs_.pop_front();
    busy_ = true;
    lock.unlock();
    job();
    lock.lock();
    busy_ = false;
    if (jobs_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace sketchlink

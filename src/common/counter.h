#ifndef SKETCHLINK_COMMON_COUNTER_H_
#define SKETCHLINK_COMMON_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace sketchlink {

/// Copyable drop-in replacement for a uint64_t statistics field that may be
/// bumped from several threads at once (e.g. the mutable counters a const
/// query path increments). Uses relaxed atomics: individual increments are
/// race-free, but a snapshot of several counters is not a consistent cut —
/// exactly the guarantee plain statistics need, at plain-integer cost on
/// x86/ARM.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t value = 0) : value_(value) {}  // NOLINT: implicit

  RelaxedCounter(const RelaxedCounter& other) : value_(other.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }

  /// Current value (relaxed load).
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return value(); }  // NOLINT: implicit

  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) {
    return value_.fetch_add(1, std::memory_order_relaxed);
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> value_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_COUNTER_H_

#ifndef SKETCHLINK_COMMON_MEMORY_TRACKER_H_
#define SKETCHLINK_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sketchlink {

/// Explicit byte accounting for in-memory structures. The paper's Figure 6b
/// compares the resident footprint of SkipBloom against a plain hash map;
/// rather than scraping the allocator, every summarization structure in this
/// library reports its own footprint via ApproximateMemoryUsage(), and this
/// helper centralizes the per-component arithmetic used in those reports.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  /// Records `bytes` under the running total.
  void Add(size_t bytes) { bytes_ += bytes; }

  /// Removes `bytes` from the running total (clamped at zero).
  void Subtract(size_t bytes) { bytes_ -= (bytes > bytes_) ? bytes_ : bytes; }

  /// Current tracked total in bytes.
  size_t bytes() const { return bytes_; }

  /// Resets the total to zero.
  void Reset() { bytes_ = 0; }

 private:
  size_t bytes_ = 0;
};

/// Approximate heap footprint of a std::string, counting the SSO buffer as
/// part of the object (callers add sizeof(std::string) separately only when
/// the string is not embedded in an already-counted object).
inline size_t StringHeapBytes(const std::string& s) {
  // libstdc++ SSO capacity is 15; anything longer owns a heap buffer of
  // capacity() + 1 bytes.
  return s.capacity() > 15 ? s.capacity() + 1 : 0;
}

/// Full footprint of a standalone std::string (object + heap).
inline size_t StringFootprint(const std::string& s) {
  return sizeof(std::string) + StringHeapBytes(s);
}

/// Formats a byte count as a human-readable string ("1.4 GB", "312 KB").
std::string FormatBytes(uint64_t bytes);

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_MEMORY_TRACKER_H_

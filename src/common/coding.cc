#include "common/coding.h"

namespace sketchlink {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);  // host is little-endian (x86/ARM64 Linux)
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int i = 0;
  while (value >= 0x80) {
    buf[i++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), i);
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

namespace {

// CRC32C table, generated once at startup from the Castagnoli polynomial.
struct Crc32cTable {
  uint32_t table[256];
  Crc32cTable() {
    const uint32_t poly = 0x82f63b78u;  // reversed Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
      }
      table[i] = crc;
    }
  }
};

const Crc32cTable& GetCrcTable() {
  static const Crc32cTable* table = new Crc32cTable();
  return *table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const Crc32cTable& t = GetCrcTable();
  crc = ~crc;
  for (unsigned char c : data) {
    crc = t.table[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace sketchlink

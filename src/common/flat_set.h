#ifndef SKETCHLINK_COMMON_FLAT_SET_H_
#define SKETCHLINK_COMMON_FLAT_SET_H_

// Open-addressing integer set with O(1) clear, for steady-state dedupe.
//
// The per-query candidate dedupe used to be a freshly constructed
// std::unordered_set (one node allocation per distinct candidate, plus
// bucket array churn). FlatIdSet keeps its backing array across queries
// and clears by bumping a generation stamp, so a warm query performs zero
// heap allocations: Insert is a probe over a flat array the CPU prefetches
// well. Growth only happens when a query sees more distinct ids than any
// before it, after which the table is warm forever.
//
// Not thread-safe; each worker owns one (it lives in QueryScratch).

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sketchlink {

class FlatIdSet {
 public:
  explicit FlatIdSet(size_t initial_capacity = 64) {
    size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  /// Forgets all elements without touching the backing array.
  void Clear() {
    ++generation_;
    size_ = 0;
    if (generation_ == 0) {
      // Stamp wrapped (once per 2^64 clears): hard-reset to stay correct.
      std::fill(slots_.begin(), slots_.end(), Slot{});
      generation_ = 1;
    }
  }

  /// Inserts `id`; returns true if it was not already present.
  bool Insert(uint64_t id) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) Grow();
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(id) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.generation != generation_) {
        s.generation = generation_;
        s.id = id;
        ++size_;
        return true;
      }
      if (s.id == id) return false;
      i = (i + 1) & mask;
    }
  }

  bool Contains(uint64_t id) const {
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(id) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.generation != generation_) return false;
      if (s.id == id) return true;
      i = (i + 1) & mask;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t generation = 0;  // live iff == current generation_
    uint64_t id = 0;
  };

  // splitmix64 finalizer: record ids are often sequential, which naked
  // masking would cluster into one probe run.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.generation != generation_) continue;
      size_t i = Mix(s.id) & mask;
      while (slots_[i].generation == generation_) i = (i + 1) & mask;
      slots_[i].generation = generation_;
      slots_[i].id = s.id;
    }
  }

  std::vector<Slot> slots_;
  uint64_t generation_ = 1;
  size_t size_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_COMMON_FLAT_SET_H_

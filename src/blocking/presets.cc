#include "blocking/presets.h"

namespace sketchlink {

std::unique_ptr<StandardBlocker> MakeStandardBlocker(
    datagen::DatasetKind kind) {
  using datagen::DatasetKind;
  std::vector<KeyPart> parts;
  switch (kind) {
    case DatasetKind::kDblp:
      // author[50%] + venue.
      parts = {KeyPart{0, 0, 0.5}, KeyPart{1, 0, 1.0}};
      break;
    case DatasetKind::kNcvr:
      // given_name + surname[50%].
      parts = {KeyPart{0, 0, 1.0}, KeyPart{1, 0, 0.5}};
      break;
    case DatasetKind::kLab:
      // assay[6] + result.
      parts = {KeyPart{0, 6, 1.0}, KeyPart{1, 0, 1.0}};
      break;
  }
  return std::make_unique<StandardBlocker>(std::move(parts));
}

std::vector<int> MatchFieldsFor(datagen::DatasetKind kind) {
  using datagen::DatasetKind;
  switch (kind) {
    case DatasetKind::kDblp:
      return {0, 1, 2};  // author, venue, year
    case DatasetKind::kNcvr:
      return {0, 1, 2, 3};  // given, surname, address, town
    case DatasetKind::kLab:
      // assay + result; the year column is excluded because 20 distinct
      // values in 2000-2019 make every cross-entity pair score ~0.8 under
      // Jaro-Winkler, drowning the discriminative fields.
      return {0, 1};
  }
  return {};
}

std::unique_ptr<HammingLshBlocker> MakeLshBlocker(datagen::DatasetKind kind,
                                                  LshParams params) {
  return std::make_unique<HammingLshBlocker>(params, MatchFieldsFor(kind));
}

}  // namespace sketchlink

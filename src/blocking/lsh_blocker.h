#ifndef SKETCHLINK_BLOCKING_LSH_BLOCKER_H_
#define SKETCHLINK_BLOCKING_LSH_BLOCKER_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "bloom/record_encoder.h"

namespace sketchlink {

/// Parameters of Hamming LSH blocking (Karapiperis & Verykios, TKDE'15; the
/// paper's second blocking method).
struct LshParams {
  /// Number of independent hash tables L; each contributes one key, so the
  /// scheme is redundant blocking.
  size_t num_tables = 8;
  /// Bits sampled per table (the LSH "k"): more bits = more selective keys.
  size_t bits_per_key = 24;
  /// Width of the record-level Bloom filter embedding. Sized so that typical
  /// records fill ~30-50% of the bits; a mostly-zero embedding would make
  /// sampled positions uninformative and collapse key selectivity.
  size_t embedding_bits = 300;
  /// Hash functions per q-gram in the embedding.
  uint32_t embedding_hashes = 4;
  /// q-gram width of the embedding.
  size_t qgram = 2;
  uint64_t seed = 0x15151515ULL;
};

/// Hamming LSH blocker: embeds each record's match fields into a record-level
/// Bloom filter (Hamming space) and, for each of L tables, samples a fixed
/// random subset of bit positions; the table id plus the sampled bit string
/// is the blocking key ("HashTableNo_Key" composite format, paper Sec. 7.2).
/// Two records collide in a table with probability that grows with their
/// Hamming similarity, so near-duplicates share at least one key with high
/// probability.
class HammingLshBlocker : public Blocker {
 public:
  /// `match_fields` selects which record fields feed the embedding.
  HammingLshBlocker(LshParams params, std::vector<int> match_fields);

  std::vector<std::string> Keys(const Record& record) const override;

  /// Normalized embedded-field values, '#'-joined (LSH keys hash the whole
  /// match-field embedding, so every embedded field is a key field).
  std::string KeyValues(const Record& record) const override;

  size_t keys_per_record() const override { return params_.num_tables; }
  std::string name() const override { return "hamming-lsh"; }

  const LshParams& params() const { return params_; }

  /// The sampled bit positions of table `t` (exposed for tests).
  const std::vector<uint32_t>& TablePositions(size_t t) const {
    return positions_[t];
  }

  /// Embeds a record the same way key generation does (for diagnostics).
  BitVector Embed(const Record& record) const;

 private:
  LshParams params_;
  std::vector<int> match_fields_;
  RecordBloomEncoder encoder_;
  // positions_[t] = sorted bit positions sampled for table t.
  std::vector<std::vector<uint32_t>> positions_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOCKING_LSH_BLOCKER_H_

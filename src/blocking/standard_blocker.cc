#include "blocking/standard_blocker.h"

#include "text/normalize.h"

namespace sketchlink {

std::string StandardBlocker::Key(const Record& record) const {
  std::string key;
  for (size_t i = 0; i < parts_.size(); ++i) {
    const KeyPart& part = parts_[i];
    if (i > 0) key.push_back('#');
    if (part.field_index < 0 ||
        static_cast<size_t>(part.field_index) >= record.fields.size()) {
      continue;  // missing field contributes an empty component
    }
    const std::string normalized =
        text::NormalizeField(record.fields[part.field_index]);
    std::string_view piece;
    if (part.prefix_chars > 0) {
      piece = text::Prefix(normalized, part.prefix_chars);
    } else {
      piece = text::FractionPrefix(normalized, part.prefix_fraction);
    }
    key.append(piece);
  }
  return key;
}

std::vector<std::string> StandardBlocker::Keys(const Record& record) const {
  return {Key(record)};
}

std::string StandardBlocker::KeyValues(const Record& record) const {
  std::string values;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) values.push_back('#');
    const int field = parts_[i].field_index;
    if (field < 0 || static_cast<size_t>(field) >= record.fields.size()) {
      continue;
    }
    values.append(text::NormalizeField(record.fields[field]));
  }
  return values;
}

void StandardBlocker::ExtractKeys(const Record& record,
                                  KeyScratch* scratch) const {
  scratch->num_keys = 1;
  if (scratch->keys.empty()) scratch->keys.emplace_back();
  std::string& key = scratch->keys[0];
  std::string& values = scratch->key_values;
  key.clear();
  values.clear();
  for (size_t i = 0; i < parts_.size(); ++i) {
    const KeyPart& part = parts_[i];
    if (i > 0) {
      key.push_back('#');
      values.push_back('#');
    }
    if (part.field_index < 0 ||
        static_cast<size_t>(part.field_index) >= record.fields.size()) {
      continue;  // missing field contributes an empty component
    }
    const size_t value_begin = values.size();
    text::NormalizeFieldTo(record.fields[part.field_index], &values);
    const std::string_view normalized(values.data() + value_begin,
                                      values.size() - value_begin);
    std::string_view piece;
    if (part.prefix_chars > 0) {
      piece = text::Prefix(normalized, part.prefix_chars);
    } else {
      piece = text::FractionPrefix(normalized, part.prefix_fraction);
    }
    key.append(piece);
  }
}

}  // namespace sketchlink

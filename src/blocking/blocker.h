#ifndef SKETCHLINK_BLOCKING_BLOCKER_H_
#define SKETCHLINK_BLOCKING_BLOCKER_H_

#include <string>
#include <vector>

#include "record/record.h"

namespace sketchlink {

/// Generates the blocking key(s) of a record — the `block(r)` function of
/// the paper's problem formulation (Sec. 3.3). Standard blocking emits one
/// key per record; redundant schemes such as LSH blocking emit several, one
/// per hash table.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Blocking keys of `record`, in a stable order.
  virtual std::vector<std::string> Keys(const Record& record) const = 0;

  /// The record's "key values" (footnote 7 of the paper): the untruncated
  /// normalized values of the fields the blocking key is built from,
  /// '#'-joined. BlockSketch measures representative distances on this
  /// string, not on the (possibly truncated or hashed) blocking key itself.
  virtual std::string KeyValues(const Record& record) const = 0;

  /// Number of keys Keys() emits (1 for standard blocking, L for LSH).
  virtual size_t keys_per_record() const = 0;

  /// Human-readable description for logs and benchmark output.
  virtual std::string name() const = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOCKING_BLOCKER_H_

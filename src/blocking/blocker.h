#ifndef SKETCHLINK_BLOCKING_BLOCKER_H_
#define SKETCHLINK_BLOCKING_BLOCKER_H_

#include <string>
#include <vector>

#include "record/record.h"

namespace sketchlink {

/// Reusable buffers for one thread's key extraction. The first `num_keys`
/// entries of `keys` are the record's blocking keys; the string buffers (and
/// the vector) keep their capacity across records, so a warm scratch makes
/// ExtractKeys allocation-free for blockers that override it.
struct KeyScratch {
  std::vector<std::string> keys;
  size_t num_keys = 0;
  std::string key_values;
};

/// Generates the blocking key(s) of a record — the `block(r)` function of
/// the paper's problem formulation (Sec. 3.3). Standard blocking emits one
/// key per record; redundant schemes such as LSH blocking emit several, one
/// per hash table.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Blocking keys of `record`, in a stable order.
  virtual std::vector<std::string> Keys(const Record& record) const = 0;

  /// The record's "key values" (footnote 7 of the paper): the untruncated
  /// normalized values of the fields the blocking key is built from,
  /// '#'-joined. BlockSketch measures representative distances on this
  /// string, not on the (possibly truncated or hashed) blocking key itself.
  virtual std::string KeyValues(const Record& record) const = 0;

  /// Keys() + KeyValues() into reused buffers. Must produce byte-identical
  /// strings to the allocating pair (the default delegates to them).
  /// Overrides exist so the steady-state query path can run without heap
  /// allocations once the scratch is warm.
  virtual void ExtractKeys(const Record& record, KeyScratch* scratch) const {
    std::vector<std::string> keys = Keys(record);
    scratch->num_keys = keys.size();
    if (scratch->keys.size() < keys.size()) scratch->keys.resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      scratch->keys[i] = std::move(keys[i]);
    }
    scratch->key_values = KeyValues(record);
  }

  /// Number of keys Keys() emits (1 for standard blocking, L for LSH).
  virtual size_t keys_per_record() const = 0;

  /// Human-readable description for logs and benchmark output.
  virtual std::string name() const = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOCKING_BLOCKER_H_

#include "blocking/sorted_neighborhood.h"

#include "common/memory_tracker.h"

namespace sketchlink {

void SortedNeighborhoodIndex::Insert(const Record& record) {
  index_.emplace(blocker_->Key(record), record.id);
}

std::vector<RecordId> SortedNeighborhoodIndex::Candidates(
    const Record& query) const {
  std::vector<RecordId> candidates;
  if (index_.empty()) return candidates;
  const std::string key = blocker_->Key(query);
  auto pivot = index_.lower_bound(key);

  // Walk `window_` entries backwards and forwards from the pivot.
  auto backward = pivot;
  for (size_t i = 0; i < window_ && backward != index_.begin(); ++i) {
    --backward;
    candidates.push_back(backward->second);
  }
  auto forward = pivot;
  for (size_t i = 0; i < window_ && forward != index_.end(); ++i) {
    candidates.push_back(forward->second);
    ++forward;
  }
  return candidates;
}

size_t SortedNeighborhoodIndex::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, id] : index_) {
    bytes += StringFootprint(key) + sizeof(id) + sizeof(void*) * 4;
  }
  return bytes;
}

}  // namespace sketchlink

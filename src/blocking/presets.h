#ifndef SKETCHLINK_BLOCKING_PRESETS_H_
#define SKETCHLINK_BLOCKING_PRESETS_H_

#include <memory>
#include <vector>

#include "blocking/lsh_blocker.h"
#include "blocking/standard_blocker.h"
#include "datagen/generators.h"

namespace sketchlink {

/// Paper Table 1 blocking-key definitions (bold fields):
///   DBLP: author[50%] + venue        NCVR: given_name + surname[50%]
///   LAB : assay[6 chars]
std::unique_ptr<StandardBlocker> MakeStandardBlocker(
    datagen::DatasetKind kind);

/// Fields compared during the matching phase (all descriptive string fields;
/// the year column is excluded since single-digit typos there dominate
/// nothing).
std::vector<int> MatchFieldsFor(datagen::DatasetKind kind);

/// Hamming LSH blocker configured for `kind` (embeds the match fields).
std::unique_ptr<HammingLshBlocker> MakeLshBlocker(datagen::DatasetKind kind,
                                                  LshParams params = {});

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOCKING_PRESETS_H_

#ifndef SKETCHLINK_BLOCKING_MINHASH_BLOCKER_H_
#define SKETCHLINK_BLOCKING_MINHASH_BLOCKER_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace sketchlink {

/// Parameters of MinHash (Jaccard) LSH blocking.
struct MinHashParams {
  /// Number of bands; each band contributes one blocking key (redundant
  /// blocking, like the Hamming scheme's L tables).
  size_t num_bands = 8;
  /// Hash functions per band (the band width r). Collision probability for
  /// Jaccard similarity s is 1 - (1 - s^r)^bands.
  size_t rows_per_band = 4;
  /// q-gram width of the token set.
  size_t qgram = 2;
  uint64_t seed = 0x3141592ULL;
};

/// MinHash LSH blocker: the classic Jaccard-similarity family (Broder), the
/// main alternative to the Hamming family the paper evaluates. Each record's
/// match fields are tokenized into q-grams; `num_bands * rows_per_band`
/// independent min-hashes summarize the set; each band of `rows_per_band`
/// signatures is hashed into one blocking key ("B<i>_<hash>").
///
/// Two records sharing a fraction s of their q-grams collide in a given
/// band with probability s^r, hence in at least one of b bands with
/// probability 1 - (1 - s^r)^b — the familiar S-curve.
class MinHashBlocker : public Blocker {
 public:
  MinHashBlocker(MinHashParams params, std::vector<int> match_fields);

  std::vector<std::string> Keys(const Record& record) const override;
  std::string KeyValues(const Record& record) const override;
  size_t keys_per_record() const override { return params_.num_bands; }
  std::string name() const override { return "minhash-lsh"; }

  const MinHashParams& params() const { return params_; }

  /// The full signature (num_bands * rows_per_band min-hashes), exposed for
  /// tests and diagnostics.
  std::vector<uint64_t> Signature(const Record& record) const;

 private:
  MinHashParams params_;
  std::vector<int> match_fields_;
  // Per-hash-function seeds, fixed at construction.
  std::vector<uint64_t> hash_seeds_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOCKING_MINHASH_BLOCKER_H_

#include "blocking/lsh_blocker.h"

#include <algorithm>

#include "common/random.h"
#include "text/normalize.h"

namespace sketchlink {

HammingLshBlocker::HammingLshBlocker(LshParams params,
                                     std::vector<int> match_fields)
    : params_(params),
      match_fields_(std::move(match_fields)),
      encoder_(params.embedding_bits, params.embedding_hashes, params.qgram,
               params.seed) {
  Rng rng(params_.seed ^ 0xabcdef);
  positions_.resize(params_.num_tables);
  for (size_t t = 0; t < params_.num_tables; ++t) {
    // Sample bits_per_key distinct positions per table (Floyd's algorithm
    // would be fancier; rejection is fine at these sizes).
    std::vector<uint32_t>& positions = positions_[t];
    while (positions.size() < params_.bits_per_key) {
      const uint32_t candidate =
          static_cast<uint32_t>(rng.UniformUint64(params_.embedding_bits));
      if (std::find(positions.begin(), positions.end(), candidate) ==
          positions.end()) {
        positions.push_back(candidate);
      }
    }
    std::sort(positions.begin(), positions.end());
  }
}

BitVector HammingLshBlocker::Embed(const Record& record) const {
  std::vector<std::string> values;
  values.reserve(match_fields_.size());
  for (int field : match_fields_) {
    if (field >= 0 && static_cast<size_t>(field) < record.fields.size()) {
      values.push_back(text::NormalizeField(record.fields[field]));
    }
  }
  return encoder_.Encode(values);
}

std::string HammingLshBlocker::KeyValues(const Record& record) const {
  std::string values;
  for (size_t i = 0; i < match_fields_.size(); ++i) {
    if (i > 0) values.push_back('#');
    const int field = match_fields_[i];
    if (field < 0 || static_cast<size_t>(field) >= record.fields.size()) {
      continue;
    }
    values.append(text::NormalizeField(record.fields[field]));
  }
  return values;
}

std::vector<std::string> HammingLshBlocker::Keys(const Record& record) const {
  const BitVector embedding = Embed(record);
  std::vector<std::string> keys;
  keys.reserve(params_.num_tables);
  for (size_t t = 0; t < params_.num_tables; ++t) {
    std::string key = "T";
    key += std::to_string(t);
    key.push_back('_');
    // Pack sampled bits 4 per hex nibble.
    uint8_t nibble = 0;
    int filled = 0;
    for (uint32_t position : positions_[t]) {
      nibble = static_cast<uint8_t>((nibble << 1) |
                                    (embedding.GetBit(position) ? 1 : 0));
      if (++filled == 4) {
        key.push_back("0123456789ABCDEF"[nibble]);
        nibble = 0;
        filled = 0;
      }
    }
    if (filled > 0) {
      nibble = static_cast<uint8_t>(nibble << (4 - filled));
      key.push_back("0123456789ABCDEF"[nibble]);
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace sketchlink

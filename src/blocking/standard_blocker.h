#ifndef SKETCHLINK_BLOCKING_STANDARD_BLOCKER_H_
#define SKETCHLINK_BLOCKING_STANDARD_BLOCKER_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace sketchlink {

/// One component of a standard blocking key: a field index plus how much of
/// the normalized value to keep. Exactly one of `prefix_chars` (absolute,
/// e.g. assay[6]) or `prefix_fraction` (relative, e.g. surname[50%]) is used;
/// set prefix_chars = 0 and prefix_fraction = 1.0 for the whole value.
struct KeyPart {
  int field_index = 0;
  size_t prefix_chars = 0;     // 0 = use fraction instead
  double prefix_fraction = 1.0;
};

/// Standard blocking (paper Sec. 7, Table 1): records with identical values
/// in the chosen (possibly truncated) blocking fields land in the same
/// block. Keys are the '#'-joined normalized field prefixes.
class StandardBlocker : public Blocker {
 public:
  explicit StandardBlocker(std::vector<KeyPart> parts)
      : parts_(std::move(parts)) {}

  std::vector<std::string> Keys(const Record& record) const override;

  /// Untruncated normalized blocking-field values ("JAMES#JOHNSON" for a
  /// key of "JAMES#JOHN").
  std::string KeyValues(const Record& record) const override;

  /// Normalizes each blocking field once, deriving the (truncated) key and
  /// the key-values string from the same pass — the allocating pair
  /// normalizes every field twice. Allocation-free once `scratch` is warm.
  void ExtractKeys(const Record& record, KeyScratch* scratch) const override;

  /// The single key of `record` (convenience over Keys()).
  std::string Key(const Record& record) const;

  size_t keys_per_record() const override { return 1; }
  std::string name() const override { return "standard"; }

  const std::vector<KeyPart>& parts() const { return parts_; }

 private:
  std::vector<KeyPart> parts_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOCKING_STANDARD_BLOCKER_H_

#include "blocking/minhash_blocker.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/hash.h"
#include "common/random.h"
#include "text/normalize.h"
#include "text/qgram.h"

namespace sketchlink {

MinHashBlocker::MinHashBlocker(MinHashParams params,
                               std::vector<int> match_fields)
    : params_(params), match_fields_(std::move(match_fields)) {
  Rng rng(params_.seed);
  const size_t total = params_.num_bands * params_.rows_per_band;
  hash_seeds_.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    hash_seeds_.push_back(rng.NextUint64());
  }
}

std::string MinHashBlocker::KeyValues(const Record& record) const {
  std::string values;
  for (size_t i = 0; i < match_fields_.size(); ++i) {
    if (i > 0) values.push_back('#');
    const int field = match_fields_[i];
    if (field < 0 || static_cast<size_t>(field) >= record.fields.size()) {
      continue;
    }
    values.append(text::NormalizeField(record.fields[field]));
  }
  return values;
}

std::vector<uint64_t> MinHashBlocker::Signature(const Record& record) const {
  // Token set: padded q-grams of every match field, field-tagged so that
  // the same gram in different fields stays distinct.
  std::vector<std::string> tokens;
  for (int field : match_fields_) {
    if (field < 0 || static_cast<size_t>(field) >= record.fields.size()) {
      continue;
    }
    const std::string normalized =
        text::NormalizeField(record.fields[field]);
    for (std::string& gram :
         text::QGrams(normalized, params_.qgram, /*pad=*/true)) {
      gram.push_back('\x1f');
      gram.push_back(static_cast<char>('0' + field));
      tokens.push_back(std::move(gram));
    }
  }

  std::vector<uint64_t> signature(hash_seeds_.size(),
                                  std::numeric_limits<uint64_t>::max());
  for (const std::string& token : tokens) {
    for (size_t h = 0; h < hash_seeds_.size(); ++h) {
      signature[h] =
          std::min(signature[h], Murmur3_64(token, hash_seeds_[h]));
    }
  }
  return signature;
}

std::vector<std::string> MinHashBlocker::Keys(const Record& record) const {
  const std::vector<uint64_t> signature = Signature(record);
  std::vector<std::string> keys;
  keys.reserve(params_.num_bands);
  for (size_t band = 0; band < params_.num_bands; ++band) {
    // Hash the band's rows into one 64-bit key.
    uint64_t combined = 0x9e3779b97f4a7c15ULL ^ band;
    for (size_t row = 0; row < params_.rows_per_band; ++row) {
      const uint64_t value =
          signature[band * params_.rows_per_band + row];
      combined ^= value + 0x9e3779b97f4a7c15ULL + (combined << 6) +
                  (combined >> 2);
    }
    std::string key = "B";
    key += std::to_string(band);
    key.push_back('_');
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(combined));
    key.append(buf);
    keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace sketchlink

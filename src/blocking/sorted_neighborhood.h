#ifndef SKETCHLINK_BLOCKING_SORTED_NEIGHBORHOOD_H_
#define SKETCHLINK_BLOCKING_SORTED_NEIGHBORHOOD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blocking/standard_blocker.h"
#include "record/record.h"

namespace sketchlink {

/// Sorted-neighborhood candidate generation (Hernandez & Stolfo, SIGMOD'95;
/// the lineage behind the Whang/Papenbrock progressive methods and the
/// Ramadan & Christen trees the paper's related work discusses). Records
/// are kept sorted by a key; a query's candidates are the `window` records
/// on either side of its key position.
///
/// This is NOT one of the paper's evaluated methods — it is provided as the
/// classic alternative to hash blocking, and it exhibits the weakness the
/// paper calls out for sort-based methods: a typo in the first character
/// ("Jones" vs "Kones") teleports a record across the sort order, so the
/// pair never meets inside any practical window.
class SortedNeighborhoodIndex {
 public:
  /// `key_blocker` produces the sort key (its full Key(), untruncated is
  /// fine); `window` is the one-sided neighbourhood size.
  SortedNeighborhoodIndex(std::unique_ptr<StandardBlocker> key_blocker,
                          size_t window)
      : blocker_(std::move(key_blocker)), window_(window) {}

  SortedNeighborhoodIndex(const SortedNeighborhoodIndex&) = delete;
  SortedNeighborhoodIndex& operator=(const SortedNeighborhoodIndex&) = delete;

  /// Indexes one record under its sort key.
  void Insert(const Record& record);

  /// Ids of the records within `window` sort positions of the query's key
  /// (both directions), including exact-key ties.
  std::vector<RecordId> Candidates(const Record& query) const;

  size_t size() const { return index_.size(); }
  size_t window() const { return window_; }

  size_t ApproximateMemoryUsage() const;

 private:
  std::unique_ptr<StandardBlocker> blocker_;
  size_t window_;
  // Sort key -> ids. std::multimap keeps neighbours adjacent; iteration
  // outward from lower_bound yields the window.
  std::multimap<std::string, RecordId> index_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOCKING_SORTED_NEIGHBORHOOD_H_

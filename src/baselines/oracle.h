#ifndef SKETCHLINK_BASELINES_ORACLE_H_
#define SKETCHLINK_BASELINES_ORACLE_H_

#include <cstdint>
#include <unordered_map>

#include "record/record.h"

namespace sketchlink {

/// The match oracle assumed by Firmani et al. (PVLDB'16): an entity that
/// answers "do these two records refer to the same real-world entity?"
/// correctly. Here it reads the generator-planted entity ids. Every query is
/// counted, since minimizing oracle calls is EO's stated objective.
class Oracle {
 public:
  Oracle() = default;

  /// Registers the ground truth of a data set.
  void RegisterDataset(const Dataset& dataset) {
    for (const Record& record : dataset.records()) {
      entity_of_[record.id] = record.entity_id;
    }
  }

  void RegisterRecord(const Record& record) {
    entity_of_[record.id] = record.entity_id;
  }

  /// True when both records are known and share an entity.
  bool Matches(RecordId a, RecordId b) const {
    ++queries_;
    auto ia = entity_of_.find(a);
    auto ib = entity_of_.find(b);
    return ia != entity_of_.end() && ib != entity_of_.end() &&
           ia->second == ib->second && ia->second != 0;
  }

  /// Number of oracle invocations so far.
  uint64_t queries() const { return queries_; }

 private:
  std::unordered_map<RecordId, uint64_t> entity_of_;
  mutable uint64_t queries_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BASELINES_ORACLE_H_

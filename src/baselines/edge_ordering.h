#ifndef SKETCHLINK_BASELINES_EDGE_ORDERING_H_
#define SKETCHLINK_BASELINES_EDGE_ORDERING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/oracle.h"
#include "linkage/matcher.h"
#include "linkage/record_store.h"
#include "linkage/similarity.h"

namespace sketchlink {

/// Tuning knobs of the EO baseline.
struct EoOptions {
  /// Probability-estimate floor: edges whose similarity-derived estimate is
  /// below this are never submitted to the oracle. Firmani et al. order
  /// edges by estimated match probability and spend oracle budget top-down;
  /// this floor is where the expected recall gain stops paying for queries.
  double submit_threshold = 0.55;
};

/// Union-find over record ids, used by EO to propagate oracle answers
/// transitively (one answer resolves a whole cluster of already-linked
/// records).
class UnionFind {
 public:
  /// Representative of `id`'s cluster (path-halving).
  RecordId Find(RecordId id);

  /// Merges the clusters of a and b.
  void Union(RecordId a, RecordId b);

  /// True when a and b are known to be in the same cluster.
  bool Connected(RecordId a, RecordId b) { return Find(a) == Find(b); }

  size_t ApproximateMemoryUsage() const {
    return sizeof(*this) + parent_.size() * (sizeof(RecordId) * 2 +
                                             sizeof(void*) * 2);
  }

 private:
  std::unordered_map<RecordId, RecordId> parent_;
};

/// EO — the Edge Ordering progressive strategy of Firmani, Saha &
/// Srivastava (PVLDB'16), the paper's second baseline. Records blocked
/// together form edges; EO estimates each edge's match probability from its
/// similarity, orders edges by the estimate, and submits them to a perfect
/// oracle top-down, using transitivity (via union-find over confirmed
/// matches) to avoid redundant queries.
///
/// Its measured profile in the paper — slightly higher recall than
/// BlockSketch, markedly lower precision, and about twice the resolution
/// time — comes from computing similarities for EVERY pair formulated in
/// the target block before anything can be submitted; that behaviour is
/// reproduced here.
class EdgeOrderingMatcher : public OnlineMatcher {
 public:
  /// `oracle` and `store` must outlive the matcher.
  EdgeOrderingMatcher(EoOptions options, RecordSimilarity similarity,
                      RecordStore* store, Oracle* oracle)
      : options_(options),
        similarity_(std::move(similarity)),
        store_(store),
        oracle_(oracle) {}

  Status Insert(const Record& record, const std::vector<std::string>& keys,
                const std::string& key_values) override;

  /// Resolution: gathers the query's block members, computes ALL pair
  /// similarities, orders the edges, and submits those above the estimate
  /// floor to the oracle (skipping edges already implied by transitivity).
  /// The reported result set is the submitted edges — the pairs EO selects
  /// to maximize recall.
  Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) override;

  uint64_t comparisons() const override { return comparisons_; }
  /// Oracle invocations so far (EO's budgeted resource).
  uint64_t oracle_queries() const { return oracle_->queries(); }
  /// Oracle queries skipped thanks to transitive closure.
  uint64_t transitivity_skips() const { return transitivity_skips_; }

  size_t ApproximateMemoryUsage() const override;
  std::string name() const override { return "EO"; }

 private:
  EoOptions options_;
  RecordSimilarity similarity_;
  RecordStore* store_;
  Oracle* oracle_;
  // Plain blocking structure: key -> member ids.
  std::unordered_map<std::string, std::vector<RecordId>> blocks_;
  UnionFind clusters_;
  uint64_t comparisons_ = 0;
  uint64_t transitivity_skips_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BASELINES_EDGE_ORDERING_H_

#ifndef SKETCHLINK_BASELINES_SNM_MATCHER_H_
#define SKETCHLINK_BASELINES_SNM_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/sorted_neighborhood.h"
#include "linkage/matcher.h"
#include "linkage/record_store.h"
#include "linkage/similarity.h"

namespace sketchlink {

/// Sorted-neighborhood method as an OnlineMatcher: candidates are the
/// records within a window of the query's sort-key position; each candidate
/// is verified against the similarity threshold. Provided as the classic
/// sort-based alternative the paper's related work argues against
/// ("'Jones' and 'Kones' would definitely reside in different clusters") —
/// useful as a fourth point of comparison in experiments.
class SortedNeighborhoodMatcher : public OnlineMatcher {
 public:
  /// `store` must outlive the matcher.
  SortedNeighborhoodMatcher(std::unique_ptr<StandardBlocker> sort_key,
                            size_t window, RecordSimilarity similarity,
                            RecordStore* store)
      : index_(std::move(sort_key), window),
        similarity_(std::move(similarity)),
        store_(store) {}

  Status Insert(const Record& record, const std::vector<std::string>& keys,
                const std::string& key_values) override {
    (void)keys;
    (void)key_values;
    SKETCHLINK_RETURN_IF_ERROR(store_->Put(record));
    index_.Insert(record);
    return Status::OK();
  }

  Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) override {
    (void)keys;
    (void)key_values;
    std::vector<RecordId> matches;
    for (RecordId id : index_.Candidates(query)) {
      auto record = store_->Get(id);
      if (!record.ok()) return record.status();
      ++comparisons_;
      if (similarity_.Matches(query, *record)) {
        matches.push_back(id);
      }
    }
    return matches;
  }

  uint64_t comparisons() const override { return comparisons_; }
  size_t ApproximateMemoryUsage() const override {
    return index_.ApproximateMemoryUsage();
  }
  std::string name() const override { return "SortedNeighborhood"; }

  const SortedNeighborhoodIndex& index() const { return index_; }

 private:
  SortedNeighborhoodIndex index_;
  RecordSimilarity similarity_;
  RecordStore* store_;
  uint64_t comparisons_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BASELINES_SNM_MATCHER_H_

#include "baselines/inv_index.h"

#include <algorithm>

#include "common/memory_tracker.h"
#include "text/double_metaphone.h"
#include "simd/kernels.h"
#include "text/jaro.h"
#include "text/normalize.h"

namespace sketchlink {

std::vector<std::string> InvIndexMatcher::FieldValues(
    const Record& record) const {
  std::vector<std::string> values;
  values.reserve(similarity_.match_fields().size());
  for (int field : similarity_.match_fields()) {
    const size_t index = static_cast<size_t>(field);
    if (index < record.fields.size()) {
      std::string value = text::NormalizeField(record.fields[index]);
      if (!value.empty()) values.push_back(std::move(value));
    }
  }
  return values;
}

std::string InvIndexMatcher::BucketCode(const std::string& value) {
  std::string code = text::DoubleMetaphonePrimary(value);
  if (code.empty()) {
    code = "#";
    code += value;  // exact bucket for non-phonetic (numeric) values
  }
  return code;
}

Status InvIndexMatcher::Insert(const Record& record,
                               const std::vector<std::string>& keys,
                               const std::string& key_values) {
  (void)keys;
  (void)key_values;
  SKETCHLINK_RETURN_IF_ERROR(store_->Put(record));
  for (const std::string& value : FieldValues(record)) {
    std::vector<RecordId>& postings = value_postings_[value];
    const bool first_sighting = postings.empty();
    postings.push_back(record.id);
    if (!first_sighting) continue;

    // New distinct value: pre-compute its similarity against every value
    // already sharing its Double Metaphone bucket (the scheme's core idea —
    // pay at insert time, look up at query time).
    const std::string code = BucketCode(value);
    std::vector<std::string>& bucket = code_buckets_[code];
    auto& row = sim_cache_[value];
    for (const std::string& other : bucket) {
      const double sim = simd::JaroWinkler(value, other);
      row[other] = sim;
      sim_cache_[other][value] = sim;
      ++build_comparisons_;
    }
    bucket.push_back(value);
  }
  return Status::OK();
}

Result<std::vector<RecordId>> InvIndexMatcher::Resolve(
    const Record& query, const std::vector<std::string>& keys,
    const std::string& key_values) {
  (void)keys;
  (void)key_values;
  const std::vector<std::string> query_values = FieldValues(query);
  const size_t num_fields =
      std::max<size_t>(similarity_.match_fields().size(), 1);

  // score[id] accumulates the best value-level similarity contributed by
  // each query field; hits[id] counts how many query fields contributed. A
  // record is reported only when EVERY query field found a phonetically
  // reachable similar value on it — the scheme has no other evidence that
  // the record agrees on that field, and a field whose Double Metaphone
  // code was broken by a typo contributes nothing (the recall weakness the
  // paper attributes to INV).
  std::unordered_map<RecordId, double> score;
  std::unordered_map<RecordId, size_t> hits;
  for (const std::string& value : query_values) {
    const std::string code = BucketCode(value);
    auto bucket_it = code_buckets_.find(code);
    if (bucket_it == code_buckets_.end()) continue;
    const auto row_it = sim_cache_.find(value);
    const auto* row = row_it == sim_cache_.end() ? nullptr : &row_it->second;
    // Best contribution of this query field per record.
    std::unordered_map<RecordId, double> field_best;
    for (const std::string& other : bucket_it->second) {
      double sim;
      if (value == other) {
        sim = 1.0;  // equality needs no similarity computation
      } else {
        const auto* entry = row == nullptr ? nullptr : [&] {
          auto it = row->find(other);
          return it == row->end() ? nullptr : &it->second;
        }();
        if (entry != nullptr) {
          sim = *entry;
          ++cache_hits_;
        } else {
          sim = simd::JaroWinkler(value, other);
          ++query_comparisons_;
        }
      }
      if (sim < options_.value_threshold) continue;
      auto postings_it = value_postings_.find(other);
      if (postings_it == value_postings_.end()) continue;
      for (RecordId id : postings_it->second) {
        double& best = field_best[id];
        best = std::max(best, sim);
      }
    }
    for (const auto& [id, best] : field_best) {
      score[id] += best;
      ++hits[id];
    }
  }

  // The result set is the retrieval survivors: records every query field
  // could reach through its Double Metaphone bucket with a value similarity
  // above the floor. A final record-score cut is applied only at the record
  // threshold over the (possibly wrong-field) value evidence — phonetic
  // grouping of non-matching values therefore leaks false positives, and a
  // single DM-broken field loses the pair, the two weaknesses Sec. 7
  // attributes to INV.
  (void)num_fields;
  std::vector<RecordId> matches;
  for (const auto& [id, total] : score) {
    if (hits[id] < query_values.size()) continue;
    matches.push_back(id);
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

size_t InvIndexMatcher::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this);
  for (const auto& [code, bucket] : code_buckets_) {
    bytes += StringFootprint(code) + bucket.capacity() * sizeof(std::string);
    for (const std::string& value : bucket) bytes += StringHeapBytes(value);
  }
  for (const auto& [value, postings] : value_postings_) {
    bytes += StringFootprint(value) + postings.capacity() * sizeof(RecordId);
  }
  for (const auto& [value, row] : sim_cache_) {
    bytes += StringFootprint(value) + sizeof(row);
    for (const auto& [other, sim] : row) {
      bytes += StringFootprint(other) + sizeof(sim) + sizeof(void*) * 2;
    }
  }
  return bytes;
}

}  // namespace sketchlink

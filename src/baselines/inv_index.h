#ifndef SKETCHLINK_BASELINES_INV_INDEX_H_
#define SKETCHLINK_BASELINES_INV_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "linkage/matcher.h"
#include "linkage/record_store.h"
#include "linkage/similarity.h"

namespace sketchlink {

/// Tuning knobs of the INV baseline.
struct InvOptions {
  /// Value-level similarity floor: bucket values closer than this to a query
  /// value contribute to candidate scores.
  double value_threshold = 0.72;
  /// Record-level acceptance threshold (the evaluation's theta' = 0.75).
  double record_threshold = 0.75;
};

/// INV — the similarity-aware inverted index of Christen, Gayler & Hawking
/// (CIKM'09), the paper's first baseline (Sec. 7.1). Field values are
/// encoded with Double Metaphone into a shared inverted index; similarities
/// between values that land in the same encoding bucket are PRE-computed at
/// insert time so that query-time matching is mostly cache lookups.
///
/// Two structural weaknesses the paper calls out are reproduced faithfully:
///  - all fields share one set of indexes, so a value match says nothing
///    about which field matched (hurts precision);
///  - Double Metaphone collapses differently-spelled values only when their
///    pronunciation survives the typo (hurts recall under perturbation).
class InvIndexMatcher : public OnlineMatcher {
 public:
  InvIndexMatcher(InvOptions options, RecordSimilarity similarity,
                  RecordStore* store)
      : options_(options),
        similarity_(std::move(similarity)),
        store_(store) {}

  Status Insert(const Record& record, const std::vector<std::string>& keys,
                const std::string& key_values) override;

  Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) override;

  uint64_t comparisons() const override {
    return build_comparisons_ + query_comparisons_;
  }
  /// Value-pair similarities computed during the pre-computation phase.
  uint64_t build_comparisons() const { return build_comparisons_; }
  /// Value-pair similarities computed at query time (cache misses).
  uint64_t query_comparisons() const { return query_comparisons_; }
  /// Query-time similarity cache hits.
  uint64_t cache_hits() const { return cache_hits_; }

  size_t ApproximateMemoryUsage() const override;
  std::string name() const override { return "INV"; }

 private:
  /// Normalized match-field values of a record.
  std::vector<std::string> FieldValues(const Record& record) const;

  /// Bucket key of a value: its Double Metaphone code, or an exact-value
  /// bucket for values with no phonetic content (pure numbers encode to the
  /// empty string and would otherwise all collide in one giant bucket).
  static std::string BucketCode(const std::string& value);

  InvOptions options_;
  RecordSimilarity similarity_;
  RecordStore* store_;

  // Hash table 1: Double Metaphone code -> distinct values in that bucket.
  std::unordered_map<std::string, std::vector<std::string>> code_buckets_;
  // Hash table 2: original value -> ids of records carrying it (any field).
  std::unordered_map<std::string, std::vector<RecordId>> value_postings_;
  // Hash table 3: pre-computed similarities between co-bucketed values,
  // two-level to avoid composite-key allocations on the hot path.
  std::unordered_map<std::string, std::unordered_map<std::string, double>>
      sim_cache_;

  uint64_t build_comparisons_ = 0;
  uint64_t query_comparisons_ = 0;
  uint64_t cache_hits_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BASELINES_INV_INDEX_H_

#ifndef SKETCHLINK_BASELINES_MAP_SUMMARY_H_
#define SKETCHLINK_BASELINES_MAP_SUMMARY_H_

#include <string>
#include <string_view>
#include <unordered_set>

#include "common/memory_tracker.h"

namespace sketchlink {

/// The "MAP" straw man of Figure 6b: a plain hash map (here a hash set of
/// distinct blocking keys), i.e. the exact, linear-memory alternative to the
/// SkipBloom synopsis. Its footprint grows linearly with distinct keys,
/// which is what makes it collapse at scale in the paper's experiment.
class MapSummary {
 public:
  MapSummary() = default;

  /// Records `key`.
  void Insert(std::string_view key) {
    keys_.emplace(key);
    ++inserts_;
  }

  /// Exact membership.
  bool Query(std::string_view key) const {
    return keys_.count(std::string(key)) > 0;
  }

  size_t size() const { return keys_.size(); }
  uint64_t inserts() const { return inserts_; }

  /// Bytes held: node overhead + string payloads (mirrors the accounting
  /// SkipBloom reports so Fig. 6b compares like with like).
  size_t ApproximateMemoryUsage() const {
    size_t bytes = sizeof(*this) + keys_.bucket_count() * sizeof(void*);
    for (const std::string& key : keys_) {
      bytes += StringFootprint(key) + sizeof(void*) * 2;
    }
    return bytes;
  }

 private:
  std::unordered_set<std::string> keys_;
  uint64_t inserts_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BASELINES_MAP_SUMMARY_H_

#include "baselines/edge_ordering.h"

#include <algorithm>
#include <unordered_set>

#include "common/memory_tracker.h"

namespace sketchlink {

RecordId UnionFind::Find(RecordId id) {
  auto it = parent_.find(id);
  if (it == parent_.end()) {
    parent_[id] = id;
    return id;
  }
  // Path halving.
  while (it->second != id) {
    auto parent_it = parent_.find(it->second);
    it->second = parent_it->second;
    id = it->second;
    it = parent_.find(id);
  }
  return id;
}

void UnionFind::Union(RecordId a, RecordId b) {
  const RecordId ra = Find(a);
  const RecordId rb = Find(b);
  if (ra != rb) parent_[ra] = rb;
}

Status EdgeOrderingMatcher::Insert(const Record& record,
                                   const std::vector<std::string>& keys,
                                   const std::string& key_values) {
  (void)key_values;
  SKETCHLINK_RETURN_IF_ERROR(store_->Put(record));
  oracle_->RegisterRecord(record);
  for (const std::string& key : keys) {
    blocks_[key].push_back(record.id);
  }
  return Status::OK();
}

Result<std::vector<RecordId>> EdgeOrderingMatcher::Resolve(
    const Record& query, const std::vector<std::string>& keys,
    const std::string& key_values) {
  (void)key_values;
  oracle_->RegisterRecord(query);

  // Gather the query's target-block members, deduplicated across redundant
  // keys (LSH emits several).
  std::unordered_set<RecordId> candidates;
  for (const std::string& key : keys) {
    auto it = blocks_.find(key);
    if (it == blocks_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }

  // Phase 1 — the expensive step the paper criticizes: estimate the match
  // probability of EVERY edge the query formulates in its block.
  struct Edge {
    RecordId id;
    double estimate;
  };
  std::vector<Edge> edges;
  edges.reserve(candidates.size());
  // The scorer normalizes the query's match fields once for the whole
  // block instead of once per edge; scores are bit-identical (see
  // SimilarityScorer).
  const SimilarityScorer scorer(similarity_, query);
  for (RecordId id : candidates) {
    auto record = store_->Get(id);
    if (!record.ok()) return record.status();
    ++comparisons_;
    edges.push_back(Edge{id, scorer.Similarity(*record)});
  }

  // Phase 2 — order edges by decreasing estimate (the "edge ordering").
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.estimate > b.estimate;
  });

  // Phase 3 — submit top edges to the oracle; transitivity lets one answer
  // cover every candidate already clustered with an answered one.
  std::unordered_map<RecordId, bool> cluster_answer;  // root -> oracle verdict
  for (const Edge& edge : edges) {
    if (edge.estimate < options_.submit_threshold) break;  // ordered: done
    const RecordId root = clusters_.Find(edge.id);
    auto known = cluster_answer.find(root);
    bool is_match;
    if (known != cluster_answer.end()) {
      // Another member of this cluster was already adjudicated against the
      // query; transitivity answers for free.
      ++transitivity_skips_;
      is_match = known->second;
    } else {
      is_match = oracle_->Matches(query.id, edge.id);
      cluster_answer[root] = is_match;
    }
    if (is_match) {
      clusters_.Union(query.id, edge.id);
    }
  }

  // The result set scored by the evaluation is every pair EO formulated and
  // compared in the target block: the paper attributes EO's depressed
  // precision precisely to these comparisons ("these comparisons, however,
  // considerably reduce the precision rates", Sec. 7.2).
  std::vector<RecordId> formulated;
  formulated.reserve(edges.size());
  for (const Edge& edge : edges) formulated.push_back(edge.id);
  return formulated;
}

size_t EdgeOrderingMatcher::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this) + clusters_.ApproximateMemoryUsage();
  for (const auto& [key, members] : blocks_) {
    bytes += StringFootprint(key) + members.capacity() * sizeof(RecordId) +
             sizeof(void*) * 2;
  }
  return bytes;
}

}  // namespace sketchlink

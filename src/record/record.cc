#include "record/record.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/coding.h"
#include "common/memory_tracker.h"

namespace sketchlink {

void Record::EncodeTo(std::string* dst) const {
  PutVarint64(dst, id);
  PutVarint64(dst, entity_id);
  PutVarint32(dst, static_cast<uint32_t>(fields.size()));
  for (const std::string& field : fields) {
    PutLengthPrefixed(dst, field);
  }
}

Result<Record> Record::DecodeFrom(std::string_view* input) {
  Record record;
  uint32_t num_fields;
  if (!GetVarint64(input, &record.id) ||
      !GetVarint64(input, &record.entity_id) ||
      !GetVarint32(input, &num_fields)) {
    return Status::Corruption("truncated record header");
  }
  record.fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    std::string_view field;
    if (!GetLengthPrefixed(input, &field)) {
      return Status::Corruption("truncated record field");
    }
    record.fields.emplace_back(field);
  }
  return record;
}

size_t Record::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this) + fields.capacity() * sizeof(std::string);
  for (const std::string& field : fields) bytes += StringHeapBytes(field);
  return bytes;
}

Result<RecordView> RecordView::FromEncoded(std::string_view payload) {
  RecordView view;
  uint32_t num_fields;
  if (!GetVarint64(&payload, &view.id_) ||
      !GetVarint64(&payload, &view.entity_id_) ||
      !GetVarint32(&payload, &num_fields)) {
    return Status::Corruption("truncated record header");
  }
  // Validate the field section up front so field() cannot fail later.
  std::string_view rest = payload;
  for (uint32_t i = 0; i < num_fields; ++i) {
    std::string_view field;
    if (!GetLengthPrefixed(&rest, &field)) {
      return Status::Corruption("truncated record field");
    }
  }
  view.num_fields_ = num_fields;
  view.fields_ = payload;
  return view;
}

std::string_view RecordView::field(size_t i) const {
  std::string_view rest = fields_;
  std::string_view field;
  for (size_t k = 0; k <= i; ++k) {
    if (!GetLengthPrefixed(&rest, &field)) return std::string_view();
  }
  return field;
}

Record RecordView::ToRecord() const {
  Record record;
  record.id = id_;
  record.entity_id = entity_id_;
  record.fields.reserve(num_fields_);
  std::string_view rest = fields_;
  for (uint32_t i = 0; i < num_fields_; ++i) {
    std::string_view field;
    GetLengthPrefixed(&rest, &field);
    record.fields.emplace_back(field);
  }
  return record;
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < field_names_.size(); ++i) {
    if (field_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Appends one CSV cell, quoting when needed.
void AppendCsvCell(std::string* out, std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) {
    out->append(cell);
    return;
  }
  out->push_back('"');
  for (char c : cell) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

// Splits one CSV line already known to contain balanced quotes. Handles
// embedded commas/quotes; multi-line cells are not produced by WriteCsv and
// are rejected by the reader.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      if (!cell.empty()) {
        return Status::Corruption("quote inside unquoted CSV cell");
      }
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cell.push_back(c);
    }
  }
  if (in_quotes) return Status::Corruption("unterminated CSV quote");
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

Status Dataset::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  std::string line = "id,entity_id";
  for (const std::string& name : schema_.field_names()) {
    line.push_back(',');
    AppendCsvCell(&line, name);
  }
  line.push_back('\n');
  out << line;
  for (const Record& record : records_) {
    line.clear();
    line += std::to_string(record.id);
    line.push_back(',');
    line += std::to_string(record.entity_id);
    for (const std::string& field : record.fields) {
      line.push_back(',');
      AppendCsvCell(&line, field);
    }
    line.push_back('\n');
    out << line;
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> Dataset::ReadCsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::Corruption("empty CSV: " + path);
  auto header = ParseCsvLine(line);
  if (!header.ok()) return header.status();
  if (header->size() < 2 || (*header)[0] != "id" ||
      (*header)[1] != "entity_id") {
    return Status::Corruption("CSV header must start with id,entity_id");
  }
  Schema schema(
      std::vector<std::string>(header->begin() + 2, header->end()));
  Dataset dataset(std::move(schema));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = ParseCsvLine(line);
    if (!cells.ok()) return cells.status();
    if (cells->size() != header->size()) {
      return Status::Corruption("CSV row width mismatch in " + path);
    }
    Record record;
    record.id = std::strtoull((*cells)[0].c_str(), nullptr, 10);
    record.entity_id = std::strtoull((*cells)[1].c_str(), nullptr, 10);
    record.fields.assign(cells->begin() + 2, cells->end());
    dataset.Add(std::move(record));
  }
  return dataset;
}

}  // namespace sketchlink

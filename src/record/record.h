#ifndef SKETCHLINK_RECORD_RECORD_H_
#define SKETCHLINK_RECORD_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sketchlink {

/// Identifier of a record inside its data set. Ground truth links a
/// perturbed record back to its source via entity_id.
using RecordId = uint64_t;

/// A flat, schema-less record: an id, the entity it was derived from, and
/// one string per field. Field meaning (names, blocking roles) lives in
/// Schema so records stay cheap to copy and serialize.
struct Record {
  RecordId id = 0;
  /// Records derived from the same real-world entity share this id; it is
  /// the ground truth used by recall/precision scoring and by the EO oracle.
  uint64_t entity_id = 0;
  std::vector<std::string> fields;

  /// Serializes to a compact binary string (for key/value store payloads).
  void EncodeTo(std::string* dst) const;

  /// Parses a record previously encoded with EncodeTo.
  static Result<Record> DecodeFrom(std::string_view* input);

  /// Heap + object footprint estimate.
  size_t ApproximateMemoryUsage() const;

  friend bool operator==(const Record& a, const Record& b) {
    return a.id == b.id && a.entity_id == b.entity_id && a.fields == b.fields;
  }
};

/// Zero-copy view of an encoded record. Wraps the EncodeTo wire bytes in
/// place: the header is parsed once, fields stay length-prefixed in the
/// underlying buffer and are sliced out on access without copying. Backed
/// by stable storage (RecordStore's arena), a view outlives concurrent
/// inserts — unlike views into a container that reallocates.
class RecordView {
 public:
  RecordView() = default;

  /// Parses the header of a payload produced by Record::EncodeTo. The view
  /// references `payload`'s bytes; the caller guarantees their lifetime.
  static Result<RecordView> FromEncoded(std::string_view payload);

  bool valid() const { return num_fields_ != kInvalid; }
  RecordId id() const { return id_; }
  uint64_t entity_id() const { return entity_id_; }
  size_t num_fields() const { return num_fields_; }

  /// The i-th field, sliced from the encoded bytes (no copy). Fields are
  /// walked from the start of the field section, so access is O(i) — fine
  /// for the handful of fields a record carries.
  std::string_view field(size_t i) const;

  /// Materializes an owning Record (copies every field).
  Record ToRecord() const;

 private:
  static constexpr uint32_t kInvalid = ~uint32_t{0};

  RecordId id_ = 0;
  uint64_t entity_id_ = 0;
  uint32_t num_fields_ = kInvalid;
  std::string_view fields_;  // the length-prefixed field section
};

/// Names the fields of a data set and which of them participate in blocking
/// keys and in match comparisons.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> field_names)
      : field_names_(std::move(field_names)) {}

  size_t num_fields() const { return field_names_.size(); }
  const std::vector<std::string>& field_names() const { return field_names_; }

  /// Index of `name`, or -1 when absent.
  int FieldIndex(std::string_view name) const;

 private:
  std::vector<std::string> field_names_;
};

/// An in-memory data set: schema + records. The generators produce these and
/// the linkage pipelines consume them (either at once, or record-by-record
/// in streaming order).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Record>& records() const { return records_; }
  std::vector<Record>& mutable_records() { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  void Add(Record record) { records_.push_back(std::move(record)); }
  const Record& operator[](size_t i) const { return records_[i]; }

  /// Writes the data set as CSV with a header row. Fields containing commas,
  /// quotes or newlines are quoted per RFC 4180.
  Status WriteCsv(const std::string& path) const;

  /// Reads a CSV written by WriteCsv (or any RFC-4180 CSV whose first two
  /// columns are numeric id and entity_id).
  static Result<Dataset> ReadCsv(const std::string& path);

 private:
  Schema schema_;
  std::vector<Record> records_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_RECORD_RECORD_H_

#include "linkage/similarity.h"

#include <cmath>
#include <cstdlib>

#include "simd/kernels.h"
#include "text/monge_elkan.h"
#include "text/normalize.h"
#include "text/smith_waterman.h"

namespace sketchlink {

namespace {

// Parses a decimal number; false when the value is not fully numeric.
bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

double CompareFieldValues(FieldComparatorKind kind, const std::string& a,
                          const std::string& b) {
  switch (kind) {
    case FieldComparatorKind::kJaroWinkler:
      // The bit-parallel kernel wrapper: == text::JaroWinkler bit for bit
      // (differentially tested), falling back to the scalar reference for
      // strings beyond the kernel limits.
      return simd::JaroWinkler(a, b);
    case FieldComparatorKind::kExact:
      return a == b ? 1.0 : 0.0;
    case FieldComparatorKind::kNumeric: {
      double value_a;
      double value_b;
      if (ParseNumber(a, &value_a) && ParseNumber(b, &value_b)) {
        const double denom =
            std::max({std::abs(value_a), std::abs(value_b), 1e-9});
        return std::max(0.0, 1.0 - std::abs(value_a - value_b) / denom);
      }
      return simd::JaroWinkler(a, b);  // non-numeric fallback
    }
    case FieldComparatorKind::kMongeElkan:
      return text::SymmetricMongeElkan(
          a, b, [](std::string_view x, std::string_view y) {
            return simd::JaroWinkler(x, y);
          });
    case FieldComparatorKind::kSmithWaterman:
      return text::SmithWatermanSimilarity(a, b);
  }
  return 0.0;
}

RecordSimilarity::RecordSimilarity(std::vector<int> match_fields,
                                   double threshold)
    : match_fields_(std::move(match_fields)), threshold_(threshold) {
  specs_.reserve(match_fields_.size());
  for (int field : match_fields_) {
    specs_.push_back(FieldSpec{field, FieldComparatorKind::kJaroWinkler,
                               1.0});
  }
}

RecordSimilarity::RecordSimilarity(std::vector<FieldSpec> fields,
                                   double threshold)
    : specs_(std::move(fields)), threshold_(threshold) {
  match_fields_.reserve(specs_.size());
  for (const FieldSpec& spec : specs_) {
    match_fields_.push_back(spec.field_index);
  }
}

double RecordSimilarity::Similarity(const Record& a, const Record& b) const {
  if (specs_.empty()) return 0.0;
  double total = 0.0;
  double total_weight = 0.0;
  for (const FieldSpec& spec : specs_) {
    const size_t index = static_cast<size_t>(spec.field_index);
    const std::string va =
        index < a.fields.size() ? text::NormalizeField(a.fields[index]) : "";
    const std::string vb =
        index < b.fields.size() ? text::NormalizeField(b.fields[index]) : "";
    total += spec.weight * CompareFieldValues(spec.comparator, va, vb);
    total_weight += spec.weight;
  }
  return total_weight <= 0 ? 0.0 : total / total_weight;
}

SimilarityScorer::SimilarityScorer(const RecordSimilarity& similarity,
                                   const Record& query)
    : threshold_(similarity.threshold()) {
  const std::vector<FieldSpec>& specs = similarity.field_specs();
  fields_.reserve(specs.size());
  for (const FieldSpec& spec : specs) {
    const size_t index = static_cast<size_t>(spec.field_index);
    QueryField field;
    field.spec = spec;
    field.value = index < query.fields.size()
                      ? text::NormalizeField(query.fields[index])
                      : "";
    fields_.push_back(std::move(field));
  }
}

double SimilarityScorer::Similarity(const Record& candidate) const {
  // Mirrors RecordSimilarity::Similarity exactly (same accumulation order,
  // same empty-field conventions); only the query-side normalization is
  // memoized.
  if (fields_.empty()) return 0.0;
  double total = 0.0;
  double total_weight = 0.0;
  for (const QueryField& field : fields_) {
    const size_t index = static_cast<size_t>(field.spec.field_index);
    const std::string vb =
        index < candidate.fields.size()
            ? text::NormalizeField(candidate.fields[index])
            : "";
    total += field.spec.weight *
             CompareFieldValues(field.spec.comparator, field.value, vb);
    total_weight += field.spec.weight;
  }
  return total_weight <= 0 ? 0.0 : total / total_weight;
}

double SimilarityScorer::Similarity(const RecordView& candidate,
                                    std::string* scratch) const {
  // Same accumulation order and empty-field conventions as the Record
  // overload; the candidate field is normalized into `scratch` instead of a
  // fresh string (NormalizeFieldTo appends byte-identical output), so the
  // doubles match bit for bit while a warm caller stays allocation-free.
  if (fields_.empty()) return 0.0;
  double total = 0.0;
  double total_weight = 0.0;
  for (const QueryField& field : fields_) {
    const size_t index = static_cast<size_t>(field.spec.field_index);
    scratch->clear();
    if (index < candidate.num_fields()) {
      text::NormalizeFieldTo(candidate.field(index), scratch);
    }
    total += field.spec.weight *
             CompareFieldValues(field.spec.comparator, field.value, *scratch);
    total_weight += field.spec.weight;
  }
  return total_weight <= 0 ? 0.0 : total / total_weight;
}

std::string RecordSimilarity::KeyValues(const Record& record) const {
  std::string out;
  for (size_t i = 0; i < match_fields_.size(); ++i) {
    if (i > 0) out.push_back('#');
    const size_t index = static_cast<size_t>(match_fields_[i]);
    if (index < record.fields.size()) {
      out.append(text::NormalizeField(record.fields[index]));
    }
  }
  return out;
}

}  // namespace sketchlink

#include "linkage/record_store.h"

#include "common/coding.h"
#include "common/memory_tracker.h"

namespace sketchlink {

std::string RecordStore::DbKey(RecordId id) const {
  std::string key = "rec\x01";
  PutFixed64(&key, id);
  return key;
}

Status RecordStore::Put(const Record& record) {
  std::string encoded;
  record.EncodeTo(&encoded);
  if (db_ != nullptr) {
    // Write through outside the lock: kv::Db synchronizes internally, and
    // holding our exclusive lock across its WAL fsync would serialize every
    // concurrent reader behind disk latency.
    SKETCHLINK_RETURN_IF_ERROR(db_->Put(DbKey(record.id), encoded));
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  index_[record.id] = arena_.CopyString(encoded);
  return Status::OK();
}

Result<Record> RecordStore::Get(RecordId id) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(id);
    if (it != index_.end()) {
      std::string_view input = it->second;
      return Record::DecodeFrom(&input);
    }
  }
  if (db_ != nullptr) {
    std::string encoded;
    SKETCHLINK_RETURN_IF_ERROR(db_->Get(DbKey(id), &encoded));
    std::string_view input(encoded);
    return Record::DecodeFrom(&input);
  }
  return Status::NotFound("record " + std::to_string(id));
}

Result<RecordView> RecordStore::GetView(RecordId id) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(id);
    if (it != index_.end()) return RecordView::FromEncoded(it->second);
  }
  if (db_ != nullptr) {
    // Read-through: a view must outlive this call, so the payload fetched
    // from the database is cached into the arena before wrapping it.
    std::string encoded;
    SKETCHLINK_RETURN_IF_ERROR(db_->Get(DbKey(id), &encoded));
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = index_.try_emplace(id);
    if (inserted) it->second = arena_.CopyString(encoded);
    return RecordView::FromEncoded(it->second);
  }
  return Status::NotFound("record " + std::to_string(id));
}

size_t RecordStore::ApproximateMemoryUsage() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return sizeof(*this) + arena_.bytes_reserved() +
         index_.size() *
             (sizeof(RecordId) + sizeof(std::string_view) + sizeof(void*) * 2);
}

}  // namespace sketchlink

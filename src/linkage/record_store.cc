#include "linkage/record_store.h"

#include "common/coding.h"
#include "common/memory_tracker.h"

namespace sketchlink {

std::string RecordStore::DbKey(RecordId id) const {
  std::string key = "rec\x01";
  PutFixed64(&key, id);
  return key;
}

Status RecordStore::Put(const Record& record) {
  if (db_ != nullptr) {
    // Write through outside the lock: kv::Db synchronizes internally, and
    // holding our exclusive lock across its WAL fsync would serialize every
    // concurrent reader behind disk latency.
    std::string encoded;
    record.EncodeTo(&encoded);
    SKETCHLINK_RETURN_IF_ERROR(db_->Put(DbKey(record.id), encoded));
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  cache_[record.id] = record;
  return Status::OK();
}

Result<Record> RecordStore::Get(RecordId id) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) return it->second;
  }
  if (db_ != nullptr) {
    std::string encoded;
    SKETCHLINK_RETURN_IF_ERROR(db_->Get(DbKey(id), &encoded));
    std::string_view input(encoded);
    return Record::DecodeFrom(&input);
  }
  return Status::NotFound("record " + std::to_string(id));
}

size_t RecordStore::ApproximateMemoryUsage() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t bytes = sizeof(*this);
  for (const auto& [id, record] : cache_) {
    bytes += sizeof(id) + record.ApproximateMemoryUsage() +
             sizeof(void*) * 2;
  }
  return bytes;
}

}  // namespace sketchlink

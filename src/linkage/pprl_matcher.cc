#include "linkage/pprl_matcher.h"

#include <unordered_set>

#include "common/memory_tracker.h"

namespace sketchlink {

double PprlMatcher::EncodingSimilarity(const BitVector& a,
                                       const BitVector& b) {
  const size_t bits = std::max(a.num_bits(), b.num_bits());
  if (bits == 0) return 1.0;
  return 1.0 - static_cast<double>(a.HammingDistance(b)) /
                   static_cast<double>(bits);
}

Status PprlMatcher::Insert(const Record& record,
                           const std::vector<std::string>& keys,
                           const std::string& key_values) {
  (void)key_values;
  // The encoding is everything this side ever sees of the record.
  encodings_.emplace(record.id, blocker_->Embed(record));
  for (const std::string& key : keys) {
    blocks_[key].push_back(record.id);
  }
  return Status::OK();
}

Result<std::vector<RecordId>> PprlMatcher::Resolve(
    const Record& query, const std::vector<std::string>& keys,
    const std::string& key_values) {
  (void)key_values;
  const BitVector query_encoding = blocker_->Embed(query);
  std::unordered_set<RecordId> seen;
  std::vector<RecordId> matches;
  for (const std::string& key : keys) {
    auto it = blocks_.find(key);
    if (it == blocks_.end()) continue;
    for (RecordId id : it->second) {
      if (!seen.insert(id).second) continue;
      auto encoding = encodings_.find(id);
      if (encoding == encodings_.end()) continue;
      ++comparisons_;
      if (EncodingSimilarity(query_encoding, encoding->second) >=
          threshold_) {
        matches.push_back(id);
      }
    }
  }
  return matches;
}

size_t PprlMatcher::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this);
  for (const auto& [id, encoding] : encodings_) {
    bytes += sizeof(id) + encoding.ApproximateMemoryUsage() +
             sizeof(void*) * 2;
  }
  for (const auto& [key, members] : blocks_) {
    bytes += StringFootprint(key) + members.capacity() * sizeof(RecordId) +
             sizeof(void*) * 2;
  }
  return bytes;
}

}  // namespace sketchlink

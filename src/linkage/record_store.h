#ifndef SKETCHLINK_LINKAGE_RECORD_STORE_H_
#define SKETCHLINK_LINKAGE_RECORD_STORE_H_

#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "kv/db.h"
#include "record/record.h"

namespace sketchlink {

/// Id-addressed record storage. The paper keeps full records in a key/value
/// database and only ids inside the summarization structures; this store
/// mirrors that split. It can run purely in memory (default) or persist
/// through the embedded key/value store with a small write-through cache.
///
/// Thread-safe: Put takes an exclusive lock, Get/size/memory take a shared
/// one, so the serving plane can verify candidates on many query threads
/// while inserts land concurrently. (kv::Db is internally synchronized.)
class RecordStore {
 public:
  /// In-memory store.
  RecordStore() = default;

  /// KV-backed store; `db` must outlive this object.
  explicit RecordStore(kv::Db* db) : db_(db) {}

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Inserts (or overwrites) a record.
  Status Put(const Record& record);

  /// Fetches a record by id; NotFound when absent.
  Result<Record> Get(RecordId id) const;

  /// Number of records stored (in-memory index size).
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return cache_.size();
  }

  size_t ApproximateMemoryUsage() const;

 private:
  std::string DbKey(RecordId id) const;

  mutable std::shared_mutex mu_;
  kv::Db* db_ = nullptr;
  // In-memory mode: the authoritative map. KV mode: a full index of ids with
  // cached payloads (records are small; the experiments need fast repeated
  // access while remaining faithful about writing through to storage).
  std::unordered_map<RecordId, Record> cache_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_RECORD_STORE_H_

#ifndef SKETCHLINK_LINKAGE_RECORD_STORE_H_
#define SKETCHLINK_LINKAGE_RECORD_STORE_H_

#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/arena.h"
#include "common/status.h"
#include "kv/db.h"
#include "record/record.h"

namespace sketchlink {

/// Id-addressed record storage. The paper keeps full records in a key/value
/// database and only ids inside the summarization structures; this store
/// mirrors that split. It can run purely in memory (default) or persist
/// through the embedded key/value store with a small write-through cache.
///
/// Payloads live as encoded bytes in an arena whose allocations never move
/// (blocks are chained, not reallocated), so GetView hands out zero-copy
/// RecordViews that stay valid for the store's lifetime — even across later
/// Puts. Storing Record objects in a container instead would either copy per
/// Get or dangle views when the container rehashes/reallocates.
///
/// Thread-safe: Put takes an exclusive lock, Get/GetView/size/memory take a
/// shared one, so the serving plane can verify candidates on many query
/// threads while inserts land concurrently. (kv::Db is internally
/// synchronized.)
class RecordStore {
 public:
  /// In-memory store.
  RecordStore() = default;

  /// KV-backed store; `db` must outlive this object.
  explicit RecordStore(kv::Db* db) : db_(db) {}

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Inserts (or overwrites) a record. Overwrites retire the previous
  /// payload's arena bytes only at store destruction (records are
  /// append-mostly in every pipeline here; repeated same-id overwrites
  /// accumulate until then).
  Status Put(const Record& record);

  /// Fetches an owning copy of a record by id; NotFound when absent.
  Result<Record> Get(RecordId id) const;

  /// Zero-copy view of a record's encoded payload. The view stays valid for
  /// the lifetime of the store (arena-backed; later Puts never move it),
  /// except that overwriting the same id makes older views of that id
  /// stale-but-safe (they keep showing the bytes they were opened on). On a
  /// KV-backed store, a miss in the in-memory index faults the payload in
  /// from the database and caches it in the arena.
  Result<RecordView> GetView(RecordId id) const;

  /// Number of records stored (in-memory index size).
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return index_.size();
  }

  size_t ApproximateMemoryUsage() const;

 private:
  std::string DbKey(RecordId id) const;

  mutable std::shared_mutex mu_;
  kv::Db* db_ = nullptr;
  // Encoded payloads; mutable so the GetView read-through fault-in can
  // cache under an exclusive lock from a const method.
  mutable Arena arena_;
  // id -> encoded payload bytes inside arena_. In-memory mode: the
  // authoritative map. KV mode: a cache faithful about writing through.
  mutable std::unordered_map<RecordId, std::string_view> index_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_RECORD_STORE_H_

#ifndef SKETCHLINK_LINKAGE_SIMILARITY_H_
#define SKETCHLINK_LINKAGE_SIMILARITY_H_

#include <string>
#include <vector>

#include "record/record.h"

namespace sketchlink {

/// Per-field comparator selection. The paper's evaluation uses Jaro-Winkler
/// everywhere; the other kinds are configuration for data whose fields are
/// not name-like (numeric results, categorical codes, multi-token author
/// lists, noisy free text).
enum class FieldComparatorKind {
  kJaroWinkler,    // the evaluation default
  kExact,          // 1.0 / 0.0
  kNumeric,        // 1 - |a-b| / max(|a|,|b|); falls back to JW if unparsable
  kMongeElkan,     // token-reordering-tolerant (JW inner)
  kSmithWaterman,  // local alignment (ignores flanking junk)
};

/// One compared field: index, comparator, and weight in the record score.
struct FieldSpec {
  int field_index = 0;
  FieldComparatorKind comparator = FieldComparatorKind::kJaroWinkler;
  double weight = 1.0;
};

/// Record-pair similarity used by the matching phase of every method in the
/// evaluation: the weighted mean of per-field similarities over the
/// normalized match fields (the paper uses Jaro-Winkler on every field with
/// threshold theta' = 0.75, which is what the index-list constructor
/// configures).
class RecordSimilarity {
 public:
  /// `match_fields` lists the field indexes compared with Jaro-Winkler at
  /// weight 1 (the paper's setup); `threshold` is theta'.
  RecordSimilarity(std::vector<int> match_fields, double threshold = 0.75);

  /// Fully typed configuration: per-field comparators and weights.
  RecordSimilarity(std::vector<FieldSpec> fields, double threshold);

  /// Mean Jaro-Winkler similarity over the match fields, in [0, 1].
  double Similarity(const Record& a, const Record& b) const;

  /// True when Similarity(a, b) >= threshold.
  bool Matches(const Record& a, const Record& b) const {
    return Similarity(a, b) >= threshold_;
  }

  /// The '#'-joined normalized match-field values of a record — the "key
  /// values" BlockSketch measures distances on (footnote 7 of the paper).
  std::string KeyValues(const Record& record) const;

  double threshold() const { return threshold_; }
  const std::vector<int>& match_fields() const { return match_fields_; }
  const std::vector<FieldSpec>& field_specs() const { return specs_; }

 private:
  std::vector<int> match_fields_;  // plain index view (kept for callers)
  std::vector<FieldSpec> specs_;
  double threshold_;
};

/// Similarity of two normalized values under one comparator kind.
double CompareFieldValues(FieldComparatorKind kind, const std::string& a,
                          const std::string& b);

/// Query-side-memoized similarity: RecordSimilarity::Similarity normalizes
/// BOTH records' fields on every call, so verifying one query against k
/// candidates re-normalizes the query k times. A scorer normalizes the
/// query's match fields once at construction and returns exactly
/// RecordSimilarity::Similarity(query, candidate) afterwards — the verified
/// matchers build one per Resolve.
class SimilarityScorer {
 public:
  SimilarityScorer(const RecordSimilarity& similarity, const Record& query);

  /// == similarity.Similarity(query, candidate), bit for bit.
  double Similarity(const Record& candidate) const;

  /// == similarity.Matches(query, candidate).
  bool Matches(const Record& candidate) const {
    return Similarity(candidate) >= threshold_;
  }

  /// Zero-copy variant: scores an encoded record in place (no Record
  /// materialization). `scratch` holds the candidate-side normalized field
  /// between comparisons so a warm caller never allocates; the doubles are
  /// identical to Similarity(candidate.ToRecord()).
  double Similarity(const RecordView& candidate, std::string* scratch) const;

  bool Matches(const RecordView& candidate, std::string* scratch) const {
    return Similarity(candidate, scratch) >= threshold_;
  }

 private:
  struct QueryField {
    FieldSpec spec;
    std::string value;  // normalized query-side field value
  };
  std::vector<QueryField> fields_;
  double threshold_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_SIMILARITY_H_

#ifndef SKETCHLINK_LINKAGE_SKETCH_MATCHERS_H_
#define SKETCHLINK_LINKAGE_SKETCH_MATCHERS_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/block_sketch.h"
#include "core/sblock_sketch.h"
#include "core/sharded_sketch.h"
#include "linkage/matcher.h"
#include "linkage/record_store.h"
#include "linkage/similarity.h"

namespace sketchlink {

/// Result-set semantics shared by the sketch matchers.
///
/// kSubBlock is the paper's semantics (Sec. 5): "the pairs formulated in
/// this sub-block constitute the final result set" — a query pays only the
/// lambda*rho representative comparisons and reports the chosen sub-block's
/// members directly, which is what makes the matching phase constant-time.
/// kVerified additionally compares the query against each member and keeps
/// only pairs above the similarity threshold (one comparison per member, so
/// resolution is linear in the sub-block — an extension, not the paper).
enum class ResolveMode { kSubBlock, kVerified };

/// BlockSketch wrapped as an OnlineMatcher: blocking routes records into
/// sub-blocks; resolution routes the query via the representatives and
/// reports its target sub-block (see ResolveMode). Duplicate candidate
/// pairs arising from redundant (LSH) blocking are discarded with a
/// per-query set, as in the paper (Sec. 7.2, footnote 17).
///
/// Backed by a striped sketch: builds shard across a thread pool and
/// queries run concurrently, with results identical to a sequential run at
/// every thread count (see DESIGN.md, Threading model).
class BlockSketchMatcher : public OnlineMatcher {
 public:
  /// `store` must outlive the matcher.
  BlockSketchMatcher(const BlockSketchOptions& options,
                     RecordSimilarity similarity, RecordStore* store,
                     ResolveMode mode = ResolveMode::kSubBlock)
      : sketch_(options),
        similarity_(std::move(similarity)),
        store_(store),
        mode_(mode) {}

  Status Insert(const Record& record, const std::vector<std::string>& keys,
                const std::string& key_values) override;
  Status InsertBatch(const std::vector<PreparedRecord>& batch,
                     ThreadPool* pool) override;
  Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) override;
  Status ResolveInto(const Record& query, const KeyScratch& keys,
                     QueryScratch* scratch) override;
  bool SupportsConcurrentResolve() const override { return true; }

  uint64_t comparisons() const override {
    return comparisons_.load(std::memory_order_relaxed) +
           sketch_.stats().representative_comparisons;
  }
  size_t ApproximateMemoryUsage() const override {
    return sketch_.ApproximateMemoryUsage();
  }
  std::string name() const override { return "BlockSketch"; }

  void RegisterMetrics(obs::Registry* registry,
                       const std::string& instance) override {
    metric_registrations_ = sketch_.RegisterMetrics(registry, instance);
  }

  const ShardedBlockSketch& sketch() const { return sketch_; }

 private:
  ShardedBlockSketch sketch_;
  RecordSimilarity similarity_;
  RecordStore* store_;
  ResolveMode mode_;
  std::atomic<uint64_t> comparisons_{0};
  // Declared after sketch_ so deregistration (which reads the sketch) runs
  // before the sketch is torn down.
  std::vector<obs::Registration> metric_registrations_;
};

/// SBlockSketch wrapped as an OnlineMatcher (streaming variant; live blocks
/// bounded by mu, spilled blocks served from the key/value store). Striped
/// like BlockSketchMatcher; each stripe's eviction queue serializes on that
/// stripe's write mutex (queries stay lock-free, DESIGN.md §10), and all
/// stripes share the (thread-safe) spill store.
class SBlockSketchMatcher : public OnlineMatcher {
 public:
  SBlockSketchMatcher(const SBlockSketchOptions& options, kv::Db* spill_db,
                      RecordSimilarity similarity, RecordStore* store,
                      ResolveMode mode = ResolveMode::kSubBlock)
      : sketch_(options, spill_db),
        similarity_(std::move(similarity)),
        store_(store),
        mode_(mode) {}

  Status Insert(const Record& record, const std::vector<std::string>& keys,
                const std::string& key_values) override;
  Status InsertBatch(const std::vector<PreparedRecord>& batch,
                     ThreadPool* pool) override;
  Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) override;
  Status ResolveInto(const Record& query, const KeyScratch& keys,
                     QueryScratch* scratch) override;
  bool SupportsConcurrentResolve() const override { return true; }

  uint64_t comparisons() const override {
    return comparisons_.load(std::memory_order_relaxed) +
           sketch_.stats().representative_comparisons;
  }
  size_t ApproximateMemoryUsage() const override {
    return sketch_.ApproximateMemoryUsage();
  }
  std::string name() const override { return "SBlockSketch"; }

  void RegisterMetrics(obs::Registry* registry,
                       const std::string& instance) override {
    metric_registrations_ = sketch_.RegisterMetrics(registry, instance);
  }

  const ShardedSBlockSketch& sketch() const { return sketch_; }

 private:
  ShardedSBlockSketch sketch_;
  RecordSimilarity similarity_;
  RecordStore* store_;
  ResolveMode mode_;
  std::atomic<uint64_t> comparisons_{0};
  // Declared after sketch_ so deregistration (which reads the sketch) runs
  // before the sketch is torn down.
  std::vector<obs::Registration> metric_registrations_;
};

/// The naive matching phase the paper's methods replace: a query is compared
/// against every record of its target block(s). Used as the "linear"
/// reference point in benchmarks and tests. Resolution only reads the block
/// index, so concurrent queries are safe once the build finished.
class NaiveBlockMatcher : public OnlineMatcher {
 public:
  NaiveBlockMatcher(RecordSimilarity similarity, RecordStore* store)
      : similarity_(std::move(similarity)), store_(store) {}

  Status Insert(const Record& record, const std::vector<std::string>& keys,
                const std::string& key_values) override;
  Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) override;
  bool SupportsConcurrentResolve() const override { return true; }

  uint64_t comparisons() const override {
    return comparisons_.load(std::memory_order_relaxed);
  }
  size_t ApproximateMemoryUsage() const override;
  std::string name() const override { return "NaiveBlockScan"; }

 private:
  RecordSimilarity similarity_;
  RecordStore* store_;
  std::unordered_map<std::string, std::vector<RecordId>> blocks_;
  std::atomic<uint64_t> comparisons_{0};
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_SKETCH_MATCHERS_H_

#ifndef SKETCHLINK_LINKAGE_ENGINE_H_
#define SKETCHLINK_LINKAGE_ENGINE_H_

#include <string>

#include "blocking/blocker.h"
#include "common/status.h"
#include "linkage/matcher.h"
#include "linkage/metrics.h"
#include "linkage/similarity.h"
#include "record/record.h"

namespace sketchlink {

/// Timing/quality summary of one end-to-end linkage run — one row of the
/// paper's Figs. 7-9 / Table 4.
struct LinkageReport {
  std::string method;
  std::string blocking;
  double blocking_seconds = 0.0;      // time to index A (blocking phase)
  double matching_seconds = 0.0;      // time to resolve all of Q
  double avg_query_seconds = 0.0;     // matching_seconds / |Q|
  uint64_t comparisons = 0;           // similarity computations
  size_t matcher_memory_bytes = 0;
  QualityMetrics quality;
};

/// Orchestrates one experiment: pushes the data set A through blocking into
/// the matcher, then resolves every query of Q, timing both phases and
/// scoring the result sets against ground truth.
class LinkageEngine {
 public:
  /// All pointers must outlive the engine.
  LinkageEngine(const Blocker* blocker, OnlineMatcher* matcher,
                RecordSimilarity similarity)
      : blocker_(blocker),
        matcher_(matcher),
        similarity_(std::move(similarity)) {}

  /// Blocking phase: indexes every record of `a`.
  Status BuildIndex(const Dataset& a);

  /// Matching phase: resolves every record of `q` and fills a report.
  /// `truth` scores result sets; pass the GroundTruth built over `a`.
  Result<LinkageReport> ResolveAll(const Dataset& q, const GroundTruth& truth);

  /// Resolves a single query (for interactive / example use).
  Result<std::vector<RecordId>> ResolveOne(const Record& query);

  double blocking_seconds() const { return blocking_seconds_; }

 private:
  const Blocker* blocker_;
  OnlineMatcher* matcher_;
  RecordSimilarity similarity_;
  double blocking_seconds_ = 0.0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_ENGINE_H_

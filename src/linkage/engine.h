#ifndef SKETCHLINK_LINKAGE_ENGINE_H_
#define SKETCHLINK_LINKAGE_ENGINE_H_

#include <memory>
#include <string>

#include "blocking/blocker.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "linkage/matcher.h"
#include "linkage/metrics.h"
#include "linkage/similarity.h"
#include "obs/spans.h"
#include "record/record.h"

namespace sketchlink {

/// Timing/quality summary of one end-to-end linkage run — one row of the
/// paper's Figs. 7-9 / Table 4.
struct LinkageReport {
  std::string method;
  std::string blocking;
  size_t threads = 1;                 // parallelism the run was driven with
  double blocking_seconds = 0.0;      // time to index A (blocking phase)
  double matching_seconds = 0.0;      // time to resolve all of Q
  double avg_query_seconds = 0.0;     // matching_seconds / |Q|
  double queries_per_second = 0.0;    // |Q| / matching_seconds
  uint64_t comparisons = 0;           // similarity computations
  size_t matcher_memory_bytes = 0;
  QualityMetrics quality;
};

/// Parallelism knobs of the engine.
struct EngineOptions {
  /// Worker threads driving BuildIndex/ResolveAll; 0 picks
  /// hardware_concurrency(). Results are identical at every setting — only
  /// wall-clock changes (see DESIGN.md, Threading model).
  size_t num_threads = 1;

  /// Metric registry the engine (and its matcher + thread pool) report
  /// into. nullptr or a NullRegistry leaves the pipeline unobserved: no
  /// per-query clock reads happen. Not owned; must outlive the engine.
  obs::Registry* registry = nullptr;

  /// `instance` label for this engine's metrics.
  std::string metrics_instance = "engine";

  /// Span tracer for the request path. nullptr disables tracing entirely
  /// (no per-query sampling tick, not even a null check beyond this
  /// pointer). Not owned; must outlive the engine. Each ResolveOne starts
  /// its own (head-sampled) trace; BuildIndex and ResolveAll start forced
  /// phase traces whose chunk spans land on pool workers via the
  /// TraceContext the pool propagates.
  obs::Tracer* tracer = nullptr;
};

/// Live instruments of one LinkageEngine. Phase durations are recorded from
/// the Stopwatch measurements the LinkageReport needs anyway (no extra
/// clock reads); the per-query histogram is armed only with an enabled
/// registry.
struct EngineMetrics {
  obs::Counter builds;            // BuildIndex calls
  obs::Counter records_indexed;   // records pushed through blocking
  obs::Counter resolve_runs;      // ResolveAll calls
  obs::Counter queries_resolved;  // queries resolved (incl. ResolveOne)
  obs::Histogram build_duration_nanos;
  obs::Histogram resolve_duration_nanos;
  // Striped: every worker thread records here on every query, and a single
  // histogram's cache lines would serialize them (see StripedHistogram).
  obs::StripedHistogram query_latency_nanos;
  bool timing_enabled = false;  // set once at construction
};

/// Orchestrates one experiment: pushes the data set A through blocking into
/// the matcher, then resolves every query of Q, timing both phases and
/// scoring the result sets against ground truth.
class LinkageEngine {
 public:
  /// All pointers must outlive the engine.
  LinkageEngine(const Blocker* blocker, OnlineMatcher* matcher,
                RecordSimilarity similarity,
                const EngineOptions& options = EngineOptions());

  /// Blocking phase: indexes every record of `a`. Blocking-key extraction is
  /// parallelized across the pool; the insert order seen by the matcher is
  /// the dataset order regardless of thread count.
  Status BuildIndex(const Dataset& a);

  /// Matching phase: resolves every record of `q` and fills a report.
  /// `truth` scores result sets; pass the GroundTruth built over `a`.
  /// Queries fan out across the pool when the matcher supports concurrent
  /// resolution; per-thread quality accumulators are merged exactly, so the
  /// report is identical at every thread count.
  Result<LinkageReport> ResolveAll(const Dataset& q, const GroundTruth& truth);

  /// Resolves a single query (for interactive / example use).
  Result<std::vector<RecordId>> ResolveOne(const Record& query);

  /// ResolveOne into reused buffers: keys land in `*keys`, the result set in
  /// `scratch->matches`. With warm scratches and a sketch matcher this runs
  /// the whole steady-state query without heap allocations; ResolveAll keeps
  /// one scratch pair per chunk. Results identical to ResolveOne.
  Status ResolveOneInto(const Record& query, KeyScratch* keys,
                        QueryScratch* scratch);

  double blocking_seconds() const { return blocking_seconds_; }

  /// Effective parallelism (1 when no pool was created).
  size_t num_threads() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }

  /// Live instruments (registry closures and tests read these directly).
  const EngineMetrics& metrics() const { return metrics_; }

 private:
  void RegisterMetrics(obs::Registry* registry, const std::string& instance);

  const Blocker* blocker_;
  OnlineMatcher* matcher_;
  RecordSimilarity similarity_;
  std::unique_ptr<ThreadPool> pool_;  // null when running single-threaded
  double blocking_seconds_ = 0.0;
  mutable EngineMetrics metrics_;
  obs::Registry* registry_ = nullptr;  // for slow-query traces; may be null
  obs::Tracer* tracer_ = nullptr;      // span tracing; may be null
  // Declared last: deregistration (whose closures read this engine and its
  // pool) must run before the members they read are torn down.
  std::vector<obs::Registration> metric_registrations_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_ENGINE_H_

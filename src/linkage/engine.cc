#include "linkage/engine.h"

#include "common/stopwatch.h"

namespace sketchlink {

Status LinkageEngine::BuildIndex(const Dataset& a) {
  Stopwatch watch;
  for (const Record& record : a.records()) {
    const std::vector<std::string> keys = blocker_->Keys(record);
    const std::string key_values = blocker_->KeyValues(record);
    SKETCHLINK_RETURN_IF_ERROR(matcher_->Insert(record, keys, key_values));
  }
  blocking_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

Result<std::vector<RecordId>> LinkageEngine::ResolveOne(const Record& query) {
  const std::vector<std::string> keys = blocker_->Keys(query);
  const std::string key_values = blocker_->KeyValues(query);
  return matcher_->Resolve(query, keys, key_values);
}

Result<LinkageReport> LinkageEngine::ResolveAll(const Dataset& q,
                                                const GroundTruth& truth) {
  LinkageReport report;
  report.method = matcher_->name();
  report.blocking = blocker_->name();
  report.blocking_seconds = blocking_seconds_;

  QualityScorer scorer(&truth);
  Stopwatch watch;
  for (const Record& query : q.records()) {
    auto matches = ResolveOne(query);
    if (!matches.ok()) return matches.status();
    scorer.AddQueryResult(query, *matches);
  }
  report.matching_seconds = watch.ElapsedSeconds();
  report.avg_query_seconds =
      q.empty() ? 0.0 : report.matching_seconds / static_cast<double>(q.size());
  report.comparisons = matcher_->comparisons();
  report.matcher_memory_bytes = matcher_->ApproximateMemoryUsage();
  report.quality = scorer.Finalize();
  return report;
}

}  // namespace sketchlink

#include "linkage/engine.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace sketchlink {

namespace {

uint64_t SecondsToNanos(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
}

}  // namespace

LinkageEngine::LinkageEngine(const Blocker* blocker, OnlineMatcher* matcher,
                             RecordSimilarity similarity,
                             const EngineOptions& options)
    : blocker_(blocker),
      matcher_(matcher),
      similarity_(std::move(similarity)),
      tracer_(options.tracer) {
  const size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                                  : options.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  if (options.registry != nullptr) {
    RegisterMetrics(options.registry, options.metrics_instance);
  }
}

void LinkageEngine::RegisterMetrics(obs::Registry* registry,
                                    const std::string& instance) {
  registry_ = registry;
  metrics_.timing_enabled = registry->enabled();
  matcher_->RegisterMetrics(registry, instance);
  auto& regs = metric_registrations_;
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"instance", instance}};
  regs.push_back(registry->AddCounter(
      obs::MetricId("sketchlink_engine_builds_total", "BuildIndex calls",
                    labels),
      &metrics_.builds));
  regs.push_back(registry->AddCounter(
      obs::MetricId("sketchlink_engine_records_indexed_total",
                    "Records pushed through the blocking phase", labels),
      &metrics_.records_indexed));
  regs.push_back(registry->AddCounter(
      obs::MetricId("sketchlink_engine_resolve_runs_total",
                    "ResolveAll calls", labels),
      &metrics_.resolve_runs));
  regs.push_back(registry->AddCounter(
      obs::MetricId("sketchlink_engine_queries_resolved_total",
                    "Queries resolved", labels),
      &metrics_.queries_resolved));
  regs.push_back(registry->AddHistogram(
      obs::MetricId("sketchlink_engine_build_duration_nanos",
                    "Blocking-phase duration per BuildIndex call", labels),
      &metrics_.build_duration_nanos));
  regs.push_back(registry->AddHistogram(
      obs::MetricId("sketchlink_engine_resolve_duration_nanos",
                    "Matching-phase duration per ResolveAll call", labels),
      &metrics_.resolve_duration_nanos));
  regs.push_back(registry->AddHistogramFn(
      obs::MetricId("sketchlink_engine_query_latency_nanos",
                    "Per-query resolution latency", labels),
      [this] { return metrics_.query_latency_nanos.Snapshot(); }));
  if (pool_ != nullptr) {
    if (registry->enabled()) pool_->EnableLatencyTiming();
    regs.push_back(registry->AddCallbackGauge(
        obs::MetricId("sketchlink_pool_queue_depth",
                      "Shards submitted but not yet completed", labels),
        [this] {
          return static_cast<double>(pool_->metrics().queue_depth.value());
        }));
    regs.push_back(registry->AddCounter(
        obs::MetricId("sketchlink_pool_batches_total",
                      "Shard batches submitted to the pool", labels),
        &pool_->metrics().batches));
    regs.push_back(registry->AddCounter(
        obs::MetricId("sketchlink_pool_shards_total",
                      "Shards executed by the pool", labels),
        &pool_->metrics().shards));
    regs.push_back(registry->AddHistogram(
        obs::MetricId("sketchlink_pool_batch_latency_nanos",
                      "RunShards wall time per batch", labels),
        &pool_->metrics().batch_latency_nanos));
  }
}

Status LinkageEngine::BuildIndex(const Dataset& a) {
  // Phase traces are forced past head sampling: there are a handful per
  // process and they are exactly what "why was this build slow" needs.
  obs::TraceScope trace =
      tracer_ != nullptr
          ? tracer_->StartTrace("engine", "build_index", /*force=*/true)
          : obs::TraceScope();
  Stopwatch watch;
  const std::vector<Record>& records = a.records();

  // Key extraction is a pure function of the record: prepare the whole batch
  // in parallel (each index written by exactly one chunk), then hand it to
  // the matcher in dataset order.
  std::vector<PreparedRecord> batch(records.size());
  const auto prepare = [&](size_t begin, size_t end) {
    obs::Span span("engine", "prepare_chunk");
    // ExtractKeys normalizes each blocking field once for key and
    // key-values together; the batch still owns its strings (copied out of
    // the chunk-local scratch).
    KeyScratch scratch;
    for (size_t i = begin; i < end; ++i) {
      batch[i].record = &records[i];
      blocker_->ExtractKeys(records[i], &scratch);
      batch[i].keys.assign(scratch.keys.begin(),
                           scratch.keys.begin() + scratch.num_keys);
      batch[i].key_values = scratch.key_values;
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(records.size(), prepare);
  } else {
    prepare(0, records.size());
  }

  {
    obs::Span span("engine", "insert_batch");
    Status status = matcher_->InsertBatch(batch, pool_.get());
    if (!status.ok()) {
      span.MarkError();
      trace.MarkError();
      return status;
    }
  }
  const double seconds = watch.ElapsedSeconds();
  blocking_seconds_ += seconds;
  metrics_.builds.Inc();
  metrics_.records_indexed.Add(records.size());
  if (metrics_.timing_enabled) {
    // Recorded from the Stopwatch the report needs anyway — no extra clock.
    const uint64_t nanos = SecondsToNanos(seconds);
    metrics_.build_duration_nanos.Record(nanos);
    if (registry_ != nullptr) {
      registry_->TraceSlow("engine", "build_index", nanos);
    }
  }
  return Status::OK();
}

Result<std::vector<RecordId>> LinkageEngine::ResolveOne(const Record& query) {
  KeyScratch keys;
  QueryScratch scratch;
  SKETCHLINK_RETURN_IF_ERROR(ResolveOneInto(query, &keys, &scratch));
  return std::move(scratch.matches);
}

Status LinkageEngine::ResolveOneInto(const Record& query, KeyScratch* keys,
                                     QueryScratch* scratch) {
  // Every query gets its own head-sampled trace, even under a ResolveAll
  // phase trace: per-query identity is what gives the tail sampler a
  // slowest-N to rank (a phase-wide trace would blur all queries together).
  obs::TraceScope trace = tracer_ != nullptr
                              ? tracer_->StartTrace("engine", "query")
                              : obs::TraceScope();
  obs::StripedLatencyTimer timer(
      metrics_.timing_enabled && SKETCHLINK_OBS_SAMPLE_HIT()
          ? &metrics_.query_latency_nanos
          : nullptr);
  blocker_->ExtractKeys(query, keys);
  Status status = matcher_->ResolveInto(query, *keys, scratch);
  if (!status.ok()) trace.MarkError();
  metrics_.queries_resolved.Inc();
  const uint64_t nanos = timer.Stop();
  if (registry_ != nullptr && nanos > 0) {
    registry_->TraceSlow("engine", "query", nanos);
  }
  return status;
}

Result<LinkageReport> LinkageEngine::ResolveAll(const Dataset& q,
                                                const GroundTruth& truth) {
  LinkageReport report;
  report.method = matcher_->name();
  report.blocking = blocker_->name();
  report.threads = num_threads();
  report.blocking_seconds = blocking_seconds_;

  obs::TraceScope trace =
      tracer_ != nullptr
          ? tracer_->StartTrace("engine", "resolve_all", /*force=*/true)
          : obs::TraceScope();
  QualityScorer scorer(&truth);
  Stopwatch watch;
  if (pool_ != nullptr && matcher_->SupportsConcurrentResolve()) {
    // Fan the queries across the pool with one scorer and one status per
    // chunk. Chunk boundaries depend only on |Q| and the thread count; the
    // scorer totals are integer sums, so merging them in chunk order
    // reproduces the sequential counts exactly.
    const std::vector<Record>& queries = q.records();
    const size_t chunks = std::min(pool_->num_threads(),
                                   std::max<size_t>(queries.size(), 1));
    std::vector<QualityScorer> chunk_scorers(chunks, QualityScorer(&truth));
    std::vector<Status> chunk_status(chunks);
    // One chunk hitting a storage error (e.g. a poisoned spill Db) stops
    // the others at their next query instead of letting them grind through
    // a failing store; the first chunk's status in index order is returned.
    std::atomic<bool> failed{false};
    pool_->RunShards(chunks, [&](size_t chunk) {
      // Parents to the resolve_all root via the context the pool carried
      // into this shard, whichever thread runs it.
      obs::Span span("engine", "resolve_chunk");
      // Per-query traces are independent of the phase trace (StartTrace
      // always mints a fresh identity), so mute the phase context for the
      // query loop: un-admitted queries then cost a null check per span
      // instead of a context save/restore per query.
      obs::ScopedTraceContext mute{obs::TraceContext()};
      const size_t begin = chunk * queries.size() / chunks;
      const size_t end = (chunk + 1) * queries.size() / chunks;
      // One scratch pair per chunk: after the first few queries warm the
      // buffers, every remaining query in the chunk resolves without heap
      // allocations (DESIGN.md §12).
      KeyScratch keys;
      QueryScratch scratch;
      for (size_t i = begin; i < end; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        Status status = ResolveOneInto(queries[i], &keys, &scratch);
        if (!status.ok()) {
          chunk_status[chunk] = status;
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        chunk_scorers[chunk].AddQueryResult(queries[i], scratch.matches);
      }
    });
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      if (!chunk_status[chunk].ok()) {
        trace.MarkError();
        return chunk_status[chunk];
      }
      scorer.Merge(chunk_scorers[chunk]);
    }
  } else {
    KeyScratch keys;
    QueryScratch scratch;
    for (const Record& query : q.records()) {
      Status status = ResolveOneInto(query, &keys, &scratch);
      if (!status.ok()) {
        trace.MarkError();
        return status;
      }
      scorer.AddQueryResult(query, scratch.matches);
    }
  }
  report.matching_seconds = watch.ElapsedSeconds();
  metrics_.resolve_runs.Inc();
  if (metrics_.timing_enabled) {
    metrics_.resolve_duration_nanos.Record(
        SecondsToNanos(report.matching_seconds));
  }
  report.avg_query_seconds =
      q.empty() ? 0.0 : report.matching_seconds / static_cast<double>(q.size());
  report.queries_per_second =
      report.matching_seconds > 0.0
          ? static_cast<double>(q.size()) / report.matching_seconds
          : 0.0;
  report.comparisons = matcher_->comparisons();
  report.matcher_memory_bytes = matcher_->ApproximateMemoryUsage();
  report.quality = scorer.Finalize();
  return report;
}

}  // namespace sketchlink

#ifndef SKETCHLINK_LINKAGE_PPRL_MATCHER_H_
#define SKETCHLINK_LINKAGE_PPRL_MATCHER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/lsh_blocker.h"
#include "linkage/matcher.h"

namespace sketchlink {

/// Privacy-preserving record linkage matcher (Schnell et al. 2009;
/// Karapiperis & Verykios TKDE'15 — the paper's refs [18]/[28]): records
/// are reduced to record-level Bloom-filter encodings (CLKs) at their
/// custodian and only the bit vectors cross the trust boundary. Blocking
/// uses the Hamming LSH keys of the encoding; matching thresholds the
/// normalized Hamming similarity between encodings. No plaintext field of
/// an indexed record is ever stored or compared here.
class PprlMatcher : public OnlineMatcher {
 public:
  /// `blocker` supplies both the LSH keys and the embedding (it must
  /// outlive the matcher). `similarity_threshold` is the minimum
  /// normalized Hamming similarity (1 - dist/bits) to report a pair.
  PprlMatcher(const HammingLshBlocker* blocker, double similarity_threshold)
      : blocker_(blocker), threshold_(similarity_threshold) {}

  /// Stores the record's ENCODING (not its fields) under its LSH keys.
  Status Insert(const Record& record, const std::vector<std::string>& keys,
                const std::string& key_values) override;

  /// Encodes the query, collects LSH candidates, and reports those whose
  /// encodings are Hamming-similar above the threshold.
  Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) override;

  uint64_t comparisons() const override { return comparisons_; }
  size_t ApproximateMemoryUsage() const override;
  std::string name() const override { return "PPRL"; }

  /// Normalized Hamming similarity between two encodings.
  static double EncodingSimilarity(const BitVector& a, const BitVector& b);

 private:
  const HammingLshBlocker* blocker_;
  double threshold_;
  // The only per-record state: the opaque encoding.
  std::unordered_map<RecordId, BitVector> encodings_;
  std::unordered_map<std::string, std::vector<RecordId>> blocks_;
  uint64_t comparisons_ = 0;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_PPRL_MATCHER_H_

#ifndef SKETCHLINK_LINKAGE_MATCHER_H_
#define SKETCHLINK_LINKAGE_MATCHER_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "common/flat_set.h"
#include "common/status.h"
#include "core/published_block.h"
#include "obs/registry.h"
#include "record/record.h"

namespace sketchlink {

class ThreadPool;

/// Reusable per-thread buffers for one query resolution. Everything keeps
/// its capacity across queries (CandidateList pins are dropped by clear(),
/// FlatIdSet clears by generation bump), so a warm scratch makes the
/// steady-state kSubBlock resolve path allocation-free.
struct QueryScratch {
  std::vector<CandidateList> groups;  // pinned candidate views per key
  FlatIdSet seen;                     // per-query duplicate-pair filter
  std::vector<RecordId> matches;      // the query's result set
  std::string norm_scratch;           // candidate-field normalization buffer
};

/// One data-set record with its blocking keys already computed. BuildIndex
/// prepares these in parallel (key extraction is pure), then hands the whole
/// batch to the matcher. `record` points into the dataset and must outlive
/// the batch.
struct PreparedRecord {
  const Record* record;
  std::vector<std::string> keys;
  std::string key_values;
};

/// Common driver interface for every online record-linkage method in the
/// evaluation (BlockSketch, SBlockSketch, the naive full-block scan, and
/// the INV / EO baselines). The engine feeds data-set records through
/// Insert() during the blocking phase and resolves query records through
/// Resolve() during the matching phase.
class OnlineMatcher {
 public:
  virtual ~OnlineMatcher() = default;

  /// Indexes one data-set record under its blocking `keys`. `key_values` is
  /// the record's untruncated, normalized blocking-field string (what
  /// BlockSketch measures distances on); methods that don't need it may
  /// ignore it.
  virtual Status Insert(const Record& record,
                        const std::vector<std::string>& keys,
                        const std::string& key_values) = 0;

  /// Indexes a whole prepared batch, using `pool` (may be null) where the
  /// method supports parallel builds. The default keeps sequential insertion
  /// semantics; overriding methods must produce results identical to the
  /// sequential loop at every pool size.
  virtual Status InsertBatch(const std::vector<PreparedRecord>& batch,
                             ThreadPool* pool) {
    (void)pool;
    for (const PreparedRecord& prepared : batch) {
      Status status =
          Insert(*prepared.record, prepared.keys, prepared.key_values);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  /// True when Resolve may be called from several threads at once. Methods
  /// whose resolution mutates shared state without internal locking (EO,
  /// INV) keep the default.
  virtual bool SupportsConcurrentResolve() const { return false; }

  /// Resolves a query record: returns the ids of the records this method
  /// reports as matches (its "result set"). Precision/recall are computed
  /// over exactly these pairs.
  virtual Result<std::vector<RecordId>> Resolve(
      const Record& query, const std::vector<std::string>& keys,
      const std::string& key_values) = 0;

  /// Resolve() into reused buffers: the result set lands in
  /// `scratch->matches`, identical to what Resolve returns. The default
  /// bridges through Resolve (allocating); the sketch matchers override it
  /// to run the steady-state query without heap allocations once the
  /// scratch is warm.
  virtual Status ResolveInto(const Record& query, const KeyScratch& keys,
                             QueryScratch* scratch) {
    std::vector<std::string> key_vec(keys.keys.begin(),
                                     keys.keys.begin() + keys.num_keys);
    auto result = Resolve(query, key_vec, keys.key_values);
    if (!result.ok()) return result.status();
    scratch->matches = std::move(*result);
    return Status::OK();
  }

  /// Similarity computations performed so far (the cost driver the paper
  /// tracks).
  virtual uint64_t comparisons() const = 0;

  /// In-memory footprint of the method's own structures.
  virtual size_t ApproximateMemoryUsage() const = 0;

  virtual std::string name() const = 0;

  /// Attaches this matcher's instruments to `registry` under the `instance`
  /// label, enabling latency timing when the registry is enabled. The
  /// matcher owns the registration handles, so its destruction deregisters
  /// them. Default: nothing to export.
  virtual void RegisterMetrics(obs::Registry* registry,
                               const std::string& instance) {
    (void)registry;
    (void)instance;
  }
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_MATCHER_H_

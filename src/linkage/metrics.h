#ifndef SKETCHLINK_LINKAGE_METRICS_H_
#define SKETCHLINK_LINKAGE_METRICS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "record/record.h"

namespace sketchlink {

/// Ground truth derived from generated data: records sharing an entity_id
/// are true matches. (With real data this would come from manual labels;
/// our generator plants it — see DESIGN.md substitutions.)
class GroundTruth {
 public:
  /// Indexes the data set that queries are resolved against (the paper's A).
  explicit GroundTruth(const Dataset& dataset);

  /// Entity of a record id (0 when unknown).
  uint64_t EntityOf(RecordId id) const;

  /// Number of indexed records belonging to `entity`.
  size_t EntityCount(uint64_t entity) const;

  size_t num_records() const { return entity_of_.size(); }

 private:
  std::unordered_map<RecordId, uint64_t> entity_of_;
  std::unordered_map<uint64_t, size_t> entity_count_;
};

/// Pair-level quality of a linkage run. Following the blocking literature
/// (and consistent with the paper's Fig. 7 discussion):
///   recall    = correct reported pairs / true matching pairs,
///   precision = correct reported pairs / reported pairs.
struct QualityMetrics {
  uint64_t true_pairs = 0;      // ground-truth matching pairs
  uint64_t reported_pairs = 0;  // pairs the method put in its result set
  uint64_t correct_pairs = 0;   // reported pairs that are true matches
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};

/// Accumulates per-query results into QualityMetrics.
class QualityScorer {
 public:
  /// `truth` must outlive the scorer.
  explicit QualityScorer(const GroundTruth* truth) : truth_(truth) {}

  /// Records the result set of one query.
  void AddQueryResult(const Record& query,
                      const std::vector<RecordId>& reported);

  /// Folds another scorer's totals into this one. The totals are plain
  /// integer sums, so merging per-thread scorers in any order yields exactly
  /// the counts a single sequential scorer would have produced.
  void Merge(const QualityScorer& other);

  /// Computes the final rates.
  QualityMetrics Finalize() const;

 private:
  const GroundTruth* truth_;
  QualityMetrics totals_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_LINKAGE_METRICS_H_

#include "linkage/metrics.h"

namespace sketchlink {

GroundTruth::GroundTruth(const Dataset& dataset) {
  entity_of_.reserve(dataset.size());
  for (const Record& record : dataset.records()) {
    entity_of_[record.id] = record.entity_id;
    ++entity_count_[record.entity_id];
  }
}

uint64_t GroundTruth::EntityOf(RecordId id) const {
  auto it = entity_of_.find(id);
  return it == entity_of_.end() ? 0 : it->second;
}

size_t GroundTruth::EntityCount(uint64_t entity) const {
  auto it = entity_count_.find(entity);
  return it == entity_count_.end() ? 0 : it->second;
}

void QualityScorer::AddQueryResult(const Record& query,
                                   const std::vector<RecordId>& reported) {
  totals_.true_pairs += truth_->EntityCount(query.entity_id);
  totals_.reported_pairs += reported.size();
  for (RecordId id : reported) {
    if (truth_->EntityOf(id) == query.entity_id && query.entity_id != 0) {
      ++totals_.correct_pairs;
    }
  }
}

void QualityScorer::Merge(const QualityScorer& other) {
  totals_.true_pairs += other.totals_.true_pairs;
  totals_.reported_pairs += other.totals_.reported_pairs;
  totals_.correct_pairs += other.totals_.correct_pairs;
}

QualityMetrics QualityScorer::Finalize() const {
  QualityMetrics metrics = totals_;
  if (metrics.true_pairs > 0) {
    metrics.recall = static_cast<double>(metrics.correct_pairs) /
                     static_cast<double>(metrics.true_pairs);
  }
  if (metrics.reported_pairs > 0) {
    metrics.precision = static_cast<double>(metrics.correct_pairs) /
                        static_cast<double>(metrics.reported_pairs);
  }
  if (metrics.recall + metrics.precision > 0) {
    metrics.f1 = 2.0 * metrics.recall * metrics.precision /
                 (metrics.recall + metrics.precision);
  }
  return metrics;
}

}  // namespace sketchlink

#include "linkage/sketch_matchers.h"

#include <optional>

#include "common/memory_tracker.h"

namespace sketchlink {

namespace {

/// Shared resolution tail, writing into reused scratch buffers. In
/// kSubBlock mode the deduplicated sub-block members ARE the result set
/// (paper Sec. 5 semantics, constant work per query) — a warm scratch makes
/// that path allocation-free. In kVerified mode each member is fetched and
/// compared against the query, and only pairs above the similarity
/// threshold survive. `comparisons` is bumped once with the query's total
/// so concurrent resolvers don't contend per member. Templated over the
/// candidate-group container: the sketches hand over pinned CandidateList
/// views (no id copies), the naive matcher plain id vectors.
template <typename CandidateGroups>
Status FinishResolveInto(const Record& query, const CandidateGroups& candidates,
                         ResolveMode mode, const RecordSimilarity& similarity,
                         const RecordStore& store,
                         std::atomic<uint64_t>* comparisons, FlatIdSet* seen,
                         std::vector<RecordId>* matches,
                         std::string* norm_scratch) {
  seen->Clear();
  matches->clear();
  uint64_t local_comparisons = 0;
  // The scorer normalizes the query's match fields once for the whole
  // candidate set instead of once per verified pair; same scores bit for
  // bit (see SimilarityScorer). kSubBlock mode never compares, so it skips
  // the construction too.
  std::optional<SimilarityScorer> scorer;
  if (mode == ResolveMode::kVerified) scorer.emplace(similarity, query);
  for (const auto& group : candidates) {
    for (RecordId id : group) {
      if (!seen->Insert(id)) continue;  // footnote 17: drop dup pairs
      if (mode == ResolveMode::kSubBlock) {
        matches->push_back(id);
        continue;
      }
      // Zero-copy verification: score the arena-backed encoded payload in
      // place instead of decoding an owning Record per candidate.
      auto view = store.GetView(id);
      if (!view.ok()) return view.status();
      ++local_comparisons;
      if (scorer->Matches(*view, norm_scratch)) {
        matches->push_back(id);
      }
    }
  }
  if (local_comparisons > 0) {
    comparisons->fetch_add(local_comparisons, std::memory_order_relaxed);
  }
  return Status::OK();
}

/// Allocating wrapper over FinishResolveInto for the legacy Resolve path.
template <typename CandidateGroups>
Result<std::vector<RecordId>> FinishResolve(
    const Record& query, const CandidateGroups& candidates, ResolveMode mode,
    const RecordSimilarity& similarity, const RecordStore& store,
    std::atomic<uint64_t>* comparisons) {
  FlatIdSet seen;
  std::vector<RecordId> matches;
  std::string norm_scratch;
  SKETCHLINK_RETURN_IF_ERROR(FinishResolveInto(query, candidates, mode,
                                               similarity, store, comparisons,
                                               &seen, &matches,
                                               &norm_scratch));
  return matches;
}

/// Flattens a prepared batch into per-(key, record) sketch inserts, in batch
/// order. The pointers reference the batch, which outlives the call.
std::vector<SketchInsert> FlattenBatch(
    const std::vector<PreparedRecord>& batch) {
  size_t total = 0;
  for (const PreparedRecord& prepared : batch) total += prepared.keys.size();
  std::vector<SketchInsert> entries;
  entries.reserve(total);
  for (const PreparedRecord& prepared : batch) {
    for (const std::string& key : prepared.keys) {
      entries.push_back(
          SketchInsert{&key, &prepared.key_values, prepared.record->id});
    }
  }
  return entries;
}

}  // namespace

Status BlockSketchMatcher::Insert(const Record& record,
                                  const std::vector<std::string>& keys,
                                  const std::string& key_values) {
  SKETCHLINK_RETURN_IF_ERROR(store_->Put(record));
  for (const std::string& key : keys) {
    sketch_.Insert(key, key_values, record.id);
  }
  return Status::OK();
}

Status BlockSketchMatcher::InsertBatch(const std::vector<PreparedRecord>& batch,
                                       ThreadPool* pool) {
  // The record store is a plain hash map: fill it sequentially, then let the
  // striped sketch absorb the flattened batch in parallel.
  for (const PreparedRecord& prepared : batch) {
    SKETCHLINK_RETURN_IF_ERROR(store_->Put(*prepared.record));
  }
  sketch_.InsertBatch(FlattenBatch(batch), pool);
  return Status::OK();
}

Result<std::vector<RecordId>> BlockSketchMatcher::Resolve(
    const Record& query, const std::vector<std::string>& keys,
    const std::string& key_values) {
  std::vector<CandidateList> candidates;
  candidates.reserve(keys.size());
  for (const std::string& key : keys) {
    candidates.push_back(sketch_.Candidates(key, key_values));
  }
  return FinishResolve(query, candidates, mode_, similarity_, *store_,
                       &comparisons_);
}

Status BlockSketchMatcher::ResolveInto(const Record& query,
                                       const KeyScratch& keys,
                                       QueryScratch* scratch) {
  // clear() drops the previous query's pins but keeps the vector capacity;
  // Candidates pins a published snapshot without allocating.
  scratch->groups.clear();
  if (scratch->groups.capacity() < keys.num_keys) {
    scratch->groups.reserve(keys.num_keys);
  }
  for (size_t i = 0; i < keys.num_keys; ++i) {
    scratch->groups.push_back(sketch_.Candidates(keys.keys[i],
                                                 keys.key_values));
  }
  return FinishResolveInto(query, scratch->groups, mode_, similarity_, *store_,
                           &comparisons_, &scratch->seen, &scratch->matches,
                           &scratch->norm_scratch);
}

Status SBlockSketchMatcher::Insert(const Record& record,
                                   const std::vector<std::string>& keys,
                                   const std::string& key_values) {
  SKETCHLINK_RETURN_IF_ERROR(store_->Put(record));
  for (const std::string& key : keys) {
    SKETCHLINK_RETURN_IF_ERROR(sketch_.Insert(key, key_values, record.id));
  }
  return Status::OK();
}

Status SBlockSketchMatcher::InsertBatch(
    const std::vector<PreparedRecord>& batch, ThreadPool* pool) {
  for (const PreparedRecord& prepared : batch) {
    SKETCHLINK_RETURN_IF_ERROR(store_->Put(*prepared.record));
  }
  return sketch_.InsertBatch(FlattenBatch(batch), pool);
}

Result<std::vector<RecordId>> SBlockSketchMatcher::Resolve(
    const Record& query, const std::vector<std::string>& keys,
    const std::string& key_values) {
  std::vector<CandidateList> candidates;
  candidates.reserve(keys.size());
  for (const std::string& key : keys) {
    auto group = sketch_.Candidates(key, key_values);
    if (!group.ok()) return group.status();
    candidates.push_back(std::move(*group));
  }
  return FinishResolve(query, candidates, mode_, similarity_, *store_,
                       &comparisons_);
}

Status SBlockSketchMatcher::ResolveInto(const Record& query,
                                        const KeyScratch& keys,
                                        QueryScratch* scratch) {
  scratch->groups.clear();
  if (scratch->groups.capacity() < keys.num_keys) {
    scratch->groups.reserve(keys.num_keys);
  }
  for (size_t i = 0; i < keys.num_keys; ++i) {
    auto group = sketch_.Candidates(keys.keys[i], keys.key_values);
    if (!group.ok()) return group.status();
    scratch->groups.push_back(std::move(*group));
  }
  return FinishResolveInto(query, scratch->groups, mode_, similarity_, *store_,
                           &comparisons_, &scratch->seen, &scratch->matches,
                           &scratch->norm_scratch);
}

Status NaiveBlockMatcher::Insert(const Record& record,
                                 const std::vector<std::string>& keys,
                                 const std::string& key_values) {
  (void)key_values;
  SKETCHLINK_RETURN_IF_ERROR(store_->Put(record));
  for (const std::string& key : keys) {
    blocks_[key].push_back(record.id);
  }
  return Status::OK();
}

Result<std::vector<RecordId>> NaiveBlockMatcher::Resolve(
    const Record& query, const std::vector<std::string>& keys,
    const std::string& key_values) {
  (void)key_values;
  std::vector<std::vector<RecordId>> candidates;
  for (const std::string& key : keys) {
    auto it = blocks_.find(key);
    if (it != blocks_.end()) candidates.push_back(it->second);
  }
  // The naive scan always verifies: that is the linear baseline being
  // summarized away.
  return FinishResolve(query, candidates, ResolveMode::kVerified, similarity_,
                       *store_, &comparisons_);
}

size_t NaiveBlockMatcher::ApproximateMemoryUsage() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, members] : blocks_) {
    bytes += StringFootprint(key) + members.capacity() * sizeof(RecordId) +
             sizeof(void*) * 2;
  }
  return bytes;
}

}  // namespace sketchlink

#ifndef SKETCHLINK_OBS_TRACE_RING_H_
#define SKETCHLINK_OBS_TRACE_RING_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sketchlink::obs {

/// One recorded slow operation. `sequence` is a process-lifetime ordinal
/// (monotone across wraparounds), so consumers can tell how many events the
/// ring dropped between two snapshots. Start times are stamped at Record
/// time as now − duration: the steady half orders events merged from
/// sharded rings within one process, the system half aligns snapshots
/// across processes.
struct TraceEvent {
  uint64_t sequence = 0;
  std::string category;  // e.g. "engine.query", "db.compaction"
  std::string label;     // operation-specific detail (key, phase, path)
  uint64_t start_steady_nanos = 0;  // steady clock at operation start
  uint64_t start_unix_micros = 0;   // system clock at operation start
  uint64_t duration_nanos = 0;
};

/// Fixed-size ring buffer of recent slow operations. Lock-light in the sense
/// that the mutex is only ever taken for operations that already crossed the
/// registry's slow-op threshold (tens of milliseconds of work), never on the
/// per-query fast path; the critical section itself is a couple of string
/// moves. Capacity is fixed at construction — a full ring overwrites the
/// oldest event.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Appends an event, overwriting the oldest when full.
  void Record(std::string_view category, std::string_view label,
              uint64_t duration_nanos);

  /// Events currently held, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Events recorded over the ring's lifetime (>= Snapshot().size()).
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> slots_;  // guarded by mutex_
  uint64_t next_sequence_ = 0;     // guarded by mutex_
};

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_TRACE_RING_H_

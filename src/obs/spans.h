#ifndef SKETCHLINK_OBS_SPANS_H_
#define SKETCHLINK_OBS_SPANS_H_

// Request-scoped span tracing: the causal layer on top of the PR-3 metric
// instruments. A Tracer owns the sampling policy and a bounded SpanBuffer
// of completed spans; a TraceScope (returned by Tracer::StartTrace) is the
// root span of one trace; Span is the RAII child-span primitive components
// drop into their hot paths. Spans find their trace through the ambient
// TraceContext (obs/trace_context.h), which ThreadPool batch submission
// carries across threads — a span started on a worker thread parents to
// whatever span submitted the batch.
//
// Cost model (what keeps this on the query path):
//   - no tracer attached: Span construction is one thread_local read plus
//     a null check — nothing else, not even a clock read.
//   - tracer attached, trace not admitted (head sampling, default 1-in-64):
//     StartTrace is a thread_local tick and a compare. The un-admitted
//     scope also *masks* any enclosing trace (e.g. the forced resolve_all
//     phase trace) for its extent, so child spans inside an un-admitted
//     request revert to the no-tracer fast path instead of streaming stray
//     spans into the enclosing trace until its cap.
//   - admitted trace: each span is two steady_clock reads plus one
//     mutex-guarded vector append on the trace's private accumulator,
//     bounded by max_spans_per_trace (overflow increments a counter and
//     drops the span, never blocks).
//
// Retention is tail-based: the keep/drop decision happens when the trace
// *completes*, so the slowest-N traces per window and every trace that saw
// an error are always kept, and the rest survive probabilistically. Kept
// traces move into the SpanBuffer, from which ExportChromeTraceJson renders
// Perfetto/about://tracing-loadable JSON.

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace_context.h"

namespace sketchlink::obs {

/// One completed span. parent_id == 0 marks the root span of its trace.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string category;  // component: "engine", "sketch", "kv", "pool"
  std::string name;      // operation: "query", "flush", "evict", ...
  uint64_t start_steady_nanos = 0;  // steady clock, orders spans in-process
  uint64_t start_unix_micros = 0;   // system clock, aligns across processes
  uint64_t duration_nanos = 0;
  uint32_t thread_ordinal = 0;  // small per-thread id (tid lane in exports)
  bool error = false;
};

/// Small dense id of the calling thread (first use assigns the next one).
uint32_t ThreadOrdinal();

/// Per-trace span accumulator. Owned (and pooled) by the Tracer; worker
/// threads of one query append concurrently, hence the mutex — it is
/// per-trace, so two traced queries never contend with each other.
struct TraceData {
  uint64_t trace_id = 0;
  std::atomic<uint64_t> next_span_id{2};  // 1 is the root span
  std::atomic<uint64_t> recorded{0};      // spans appended or dropped
  std::atomic<bool> error{false};
  size_t max_spans = 0;
  std::mutex mutex;
  std::vector<SpanRecord> spans;  // guarded by mutex

  /// Appends `record` unless the per-trace cap is reached; returns false
  /// (caller counts the drop) on overflow.
  bool Append(SpanRecord&& record);

  void Reset(uint64_t new_trace_id, size_t max_spans_in) {
    trace_id = new_trace_id;
    next_span_id.store(2, std::memory_order_relaxed);
    recorded.store(0, std::memory_order_relaxed);
    error.store(false, std::memory_order_relaxed);
    max_spans = max_spans_in;
    spans.clear();
  }
};

/// Bounded ring of completed spans — the SpanBuffer the tail sampler feeds
/// and /traces serves. Same concurrency contract as TraceRing (mutex taken
/// only for already-sampled work, never on undecided hot paths); a full
/// buffer overwrites the oldest spans, and `sequence`-style accounting is
/// exposed via total_recorded() so consumers can detect loss between
/// snapshots.
class SpanBuffer {
 public:
  explicit SpanBuffer(size_t capacity);

  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// Appends a batch of spans (one kept trace), overwriting oldest-first
  /// when full.
  void Record(std::vector<SpanRecord>&& spans);

  /// Spans currently held, in recording order (oldest first).
  std::vector<SpanRecord> Snapshot() const;

  /// Spans recorded over the buffer's lifetime (>= Snapshot().size()).
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> slots_;  // guarded by mutex_
  uint64_t next_index_ = 0;        // guarded by mutex_
};

/// Live instruments of one Tracer (registered via RegisterMetrics).
struct TracerMetrics {
  // Stride-accounted: each admission adds its whole sampling stride, so the
  // un-admitted hot path performs no shared-counter write (exact per thread
  // up to one in-flight stride; zero while sample_period == 0).
  Counter traces_started;   // StartTrace calls (admitted or not)
  Counter traces_admitted;  // traces that recorded spans
  Counter traces_kept;      // admitted traces retained by the tail sampler
  Counter traces_error;     // kept because a span flagged an error
  Counter traces_slow;      // kept because in the slowest-N of the window
  Counter spans_dropped;    // spans lost to the per-trace cap
};

class TraceScope;

/// Owns sampling policy, trace-data pooling, and the SpanBuffer of kept
/// traces. Thread-safe; one per process (or per served pipeline) is the
/// intended shape. Components never see the Tracer — they only create
/// Spans against the ambient TraceContext.
class Tracer {
 public:
  struct Options {
    /// Head admission: 1 in sample_period StartTrace calls records spans
    /// (per-thread deterministic tick). 0 disables admission entirely —
    /// the "tracing attached but off" configuration. 1 traces everything.
    uint32_t sample_period = 64;
    /// Tail retention of admitted traces that are neither slow nor
    /// errored: 1 in keep_period survives. 0 keeps none of them.
    uint32_t keep_period = 4;
    /// The slowest `slowest_per_window` root durations within each window
    /// of `window_traces` completed traces are always kept.
    size_t slowest_per_window = 8;
    size_t window_traces = 256;
    /// Spans per trace beyond this are dropped (counted, never blocking).
    /// Spans append on completion, so a capped trace can hold spans whose
    /// still-open parent was dropped later — consumers must treat a
    /// missing parent id as terminating the ancestor walk.
    size_t max_spans_per_trace = 512;
    /// SpanBuffer capacity in spans.
    size_t buffer_capacity = 8192;
  };

  Tracer() : Tracer(Options()) {}
  explicit Tracer(const Options& options);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts a new trace rooted at a span `category`/`name`. The returned
  /// scope installs the trace as the current thread's ambient context; its
  /// destruction completes the root span and runs the tail-sampling
  /// keep/drop decision. `force` bypasses head sampling (rare phase-level
  /// traces: build_index, resolve_all). An un-admitted call returns an
  /// inactive scope at tick-and-compare cost; that scope masks any
  /// enclosing active context for its lifetime, so the un-admitted
  /// request's spans cost a null check each instead of polluting the
  /// enclosing trace. Always starts a fresh trace:
  /// an enclosing active context is saved and restored, not extended — a
  /// per-query trace under a phase trace keeps its own identity (and its
  /// own shot at the slowest-N window).
  TraceScope StartTrace(std::string_view category, std::string_view name,
                        bool force = false);

  /// Kept-trace spans (the /traces payload).
  SpanBuffer& buffer() { return buffer_; }
  const SpanBuffer& buffer() const { return buffer_; }

  const TracerMetrics& metrics() const { return metrics_; }
  const Options& options() const { return options_; }

  /// Attaches the tracer's instruments to `registry` under `instance`.
  /// The returned handles must not outlive this tracer.
  std::vector<Registration> RegisterMetrics(Registry* registry,
                                            const std::string& instance);

 private:
  friend class TraceScope;
  friend class Span;

  /// Appends one completed span to its trace (called from Span::End).
  void FinishSpan(TraceData* data, SpanRecord&& record);

  /// Completes a trace: tail keep/drop, buffer hand-off, data recycling.
  void FinishTrace(TraceData* data, uint64_t root_duration_nanos);

  TraceData* AcquireData();
  void ReleaseData(TraceData* data);

  const Options options_;
  SpanBuffer buffer_;
  mutable TracerMetrics metrics_;

  std::mutex mutex_;  // guards the pool, ids and the sampling window
  std::vector<std::unique_ptr<TraceData>> pool_;
  std::vector<std::unique_ptr<TraceData>> free_;
  uint64_t next_trace_id_ = 1;
  uint64_t keep_tick_ = 0;
  // Tail window: the `slowest_per_window` largest root durations of the
  // current window, as a min-heap over `slow_floor_` (slow_durations_[0]
  // is the smallest retained duration — the bar a trace must clear).
  std::vector<uint64_t> slow_durations_;
  size_t window_completed_ = 0;
};

/// RAII root of one trace. Inactive (default-constructed or un-admitted)
/// scopes cost nothing on destruction.
class TraceScope {
 public:
  TraceScope() = default;
  TraceScope(TraceScope&& other) noexcept { *this = std::move(other); }
  TraceScope& operator=(TraceScope&& other) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return tracer_ != nullptr; }

  /// Flags the whole trace as errored: the tail sampler always keeps it.
  void MarkError();

  uint64_t trace_id() const { return record_.trace_id; }

 private:
  friend class Tracer;
  TraceScope(Tracer* tracer, TraceData* data, std::string_view category,
             std::string_view name);

  Tracer* tracer_ = nullptr;
  TraceData* data_ = nullptr;
  // Un-admitted scope that cleared an enclosing context: restore-only.
  bool suppress_ = false;
  SpanRecord record_;
  TraceContext saved_;  // context restored when the scope ends
};

/// RAII child span recorded against the ambient TraceContext. Safe to
/// construct anywhere — without an active context it does nothing (one
/// thread_local read, no clock access).
class Span {
 public:
  Span(std::string_view category, std::string_view name) {
    const TraceContext& context = CurrentTraceContext();
    if (context.tracer == nullptr) return;
    Begin(context, category, name);
  }
  ~Span() {
    if (active_) End();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Marks this span — and therefore its trace — as errored.
  void MarkError();

  bool active() const { return active_; }

 private:
  void Begin(const TraceContext& context, std::string_view category,
             std::string_view name);
  void End();

  bool active_ = false;
  Tracer* tracer_ = nullptr;
  TraceData* data_ = nullptr;
  SpanRecord record_;
  TraceContext saved_;  // spans nest: children parent to this span
};

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_SPANS_H_

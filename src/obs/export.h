#ifndef SKETCHLINK_OBS_EXPORT_H_
#define SKETCHLINK_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/registry.h"
#include "obs/trace_ring.h"

namespace sketchlink::obs {

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` comments per family, `name{labels} value`
/// samples, histograms as cumulative `_bucket{le=...}` series plus `_sum`
/// and `_count` (bucket boundaries are the histogram's power-of-two upper
/// bounds; empty buckets are elided, which the cumulative encoding allows).
std::string ExportPrometheusText(const RegistrySnapshot& snapshot);

/// Renders a snapshot as one JSON document:
///   {"metrics": [{"name": ..., "labels": {...}, "kind": "counter"|"gauge"|
///    "histogram", ...}]}
/// Histogram entries carry count/sum/max/mean/p50/p95/p99 plus the
/// non-empty buckets as [{"le": upper, "count": n}, ...].
std::string ExportJson(const RegistrySnapshot& snapshot);

/// Renders trace-ring events as a JSON array (oldest first).
std::string ExportTraceJson(const std::vector<TraceEvent>& events);

/// Writes `content` to `path` (stdio, no Env dependency — exporters run in
/// tools/benches, not in the durability-audited store paths).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_EXPORT_H_

#ifndef SKETCHLINK_OBS_EXPORT_H_
#define SKETCHLINK_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/registry.h"
#include "obs/spans.h"
#include "obs/trace_ring.h"

namespace sketchlink::obs {

/// Maps an arbitrary string onto a valid Prometheus metric name
/// ([a-zA-Z_:][a-zA-Z0-9_:]*), replacing every invalid character with '_'.
/// Used both by the text exporter (belt) and by MetricRegistry at
/// registration time (suspenders), so a hostile name can never reach the
/// exposition output unsanitized.
std::string SanitizeMetricName(const std::string& name);

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` comments per family, `name{labels} value`
/// samples, histograms as cumulative `_bucket{le=...}` series plus `_sum`
/// and `_count` (bucket boundaries are the histogram's power-of-two upper
/// bounds; empty buckets are elided, which the cumulative encoding allows).
std::string ExportPrometheusText(const RegistrySnapshot& snapshot);

/// Renders a snapshot as one JSON document:
///   {"metrics": [{"name": ..., "labels": {...}, "kind": "counter"|"gauge"|
///    "histogram", ...}]}
/// Histogram entries carry count/sum/max/mean/p50/p95/p99 plus the
/// non-empty buckets as [{"le": upper, "count": n}, ...].
std::string ExportJson(const RegistrySnapshot& snapshot);

/// Renders trace-ring events as a JSON array (oldest first).
std::string ExportTraceJson(const std::vector<TraceEvent>& events);

/// Renders completed spans as Chrome trace_event JSON, loadable in
/// about://tracing and Perfetto: {"traceEvents": [{"ph": "X", "ts": ...,
/// "dur": ..., "pid", "tid", "args": {trace_id, span_id, parent_span_id,
/// start_unix_micros, error}}, ...]}. `ts` is the span's steady start time
/// in microseconds (fractional), `tid` its thread ordinal.
std::string ExportChromeTraceJson(const std::vector<SpanRecord>& spans);

/// Writes `content` to `path` (stdio, no Env dependency — exporters run in
/// tools/benches, not in the durability-audited store paths).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_EXPORT_H_

#include "obs/http_message.h"

#include <poll.h>
#include <sys/socket.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>

namespace sketchlink::obs {

namespace {

std::string ToLower(std::string_view in) {
  std::string out(in);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view in) {
  while (!in.empty() && (in.front() == ' ' || in.front() == '\t')) {
    in.remove_prefix(1);
  }
  while (!in.empty() && (in.back() == ' ' || in.back() == '\t')) {
    in.remove_suffix(1);
  }
  return in;
}

/// Parses "METHOD /path?query HTTP/1.x". False on anything malformed.
bool ParseRequestLine(std::string_view line, HttpRequest* request,
                      bool* http_11) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  const std::string_view version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  *http_11 = version == "HTTP/1.1";
  request->method = std::string(line.substr(0, sp1));
  std::string target(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (target.empty() || target[0] != '/') return false;
  const size_t q = target.find('?');
  if (q != std::string::npos) {
    request->query = target.substr(q + 1);
    target.resize(q);
  }
  request->path = std::move(target);
  return true;
}

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Polls `fd` for `events` honoring an absolute deadline; true when ready.
bool PollFor(int fd, short events, uint64_t timeout_ms) {
  const uint64_t start = NowMillis();
  for (;;) {
    int wait = -1;
    if (timeout_ms != 0) {
      const uint64_t elapsed = NowMillis() - start;
      if (elapsed >= timeout_ms) return false;
      wait = static_cast<int>(timeout_ms - elapsed);
    }
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;  // timeout
    return true;                   // ready (or error/hup — let I/O surface it)
  }
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return std::string_view(value);
  }
  return {};
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n" : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpRequestParser::HttpRequestParser(size_t max_head_bytes,
                                     size_t max_body_bytes)
    : max_head_bytes_(max_head_bytes), max_body_bytes_(max_body_bytes) {}

HttpRequestParser::State HttpRequestParser::Fail(int status) {
  state_ = State::kError;
  error_status_ = status;
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(data.data(), data.size());
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Advance() {
  if (!headers_parsed_) {
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > max_head_bytes_) return Fail(431);
      return state_;
    }
    if (head_end > max_head_bytes_) return Fail(431);

    const std::string_view head(buffer_.data(), head_end);
    const size_t line_end = head.find("\r\n");
    const std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    bool http_11 = false;
    if (!ParseRequestLine(request_line, &request_, &http_11)) return Fail(400);

    // Header block: one "name: value" per line; names lower-cased.
    size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      const std::string_view line = head.substr(pos, eol - pos);
      pos = eol + 2;
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) return Fail(400);
      request_.headers.emplace_back(ToLower(line.substr(0, colon)),
                                    std::string(Trim(line.substr(colon + 1))));
    }

    if (!request_.Header("transfer-encoding").empty()) return Fail(501);

    const std::string_view length = request_.Header("content-length");
    body_needed_ = 0;
    if (!length.empty()) {
      char* end = nullptr;
      const std::string copy(length);
      const unsigned long long parsed = std::strtoull(copy.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || copy.empty()) return Fail(400);
      if (parsed > max_body_bytes_) return Fail(413);
      body_needed_ = static_cast<size_t>(parsed);
    }

    const std::string_view connection = request_.Header("connection");
    const std::string connection_lower = ToLower(connection);
    if (http_11) {
      keep_alive_ = connection_lower.find("close") == std::string::npos;
    } else {
      keep_alive_ = connection_lower.find("keep-alive") != std::string::npos;
    }

    buffer_.erase(0, head_end + 4);
    headers_parsed_ = true;
  }

  if (buffer_.size() < body_needed_) return state_;
  request_.body = buffer_.substr(0, body_needed_);
  leftover_ = buffer_.substr(body_needed_);
  buffer_.clear();
  state_ = State::kComplete;
  return state_;
}

std::string HttpRequestParser::TakeLeftover() {
  std::string out = std::move(leftover_);
  leftover_.clear();
  return out;
}

void HttpRequestParser::Reset() {
  state_ = State::kNeedMore;
  error_status_ = 400;
  headers_parsed_ = false;
  keep_alive_ = false;
  body_needed_ = 0;
  buffer_.clear();
  leftover_.clear();
  request_ = HttpRequest();
}

bool SendAllWithTimeout(int fd, const char* data, size_t size,
                        uint64_t timeout_ms) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!PollFor(fd, POLLOUT, timeout_ms)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

ssize_t RecvWithTimeout(int fd, char* buf, size_t size, uint64_t timeout_ms) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, size, MSG_DONTWAIT);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!PollFor(fd, POLLIN, timeout_ms)) return -2;
      continue;
    }
    return -1;
  }
}

}  // namespace sketchlink::obs

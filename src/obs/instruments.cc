#include "obs/instruments.h"

namespace sketchlink::obs {

uint64_t HistogramSnapshot::count() const {
  uint64_t total = 0;
  for (uint64_t bucket : buckets) total += bucket;
  return total;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
  sum += other.sum;
  if (other.max > max) max = other.max;
}

uint64_t HistogramSnapshot::BucketLowerBound(size_t index) {
  if (index == 0) return 0;
  return uint64_t{1} << (index - 1);
}

uint64_t HistogramSnapshot::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest rank: the target sample is the ceil(p * n)-th smallest.
  uint64_t target = static_cast<uint64_t>(p * static_cast<double>(total));
  if (static_cast<double>(target) < p * static_cast<double>(total)) ++target;
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      const uint64_t upper = BucketUpperBound(i);
      return upper > max ? max : upper;
    }
  }
  return max;  // unreachable: cumulative == total >= target
}

double HistogramSnapshot::Mean() const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(total);
}

}  // namespace sketchlink::obs

#ifndef SKETCHLINK_OBS_TRACE_CONTEXT_H_
#define SKETCHLINK_OBS_TRACE_CONTEXT_H_

// Request-scoped trace propagation. This header is intentionally
// header-only and dependency-free so src/common (which obs links, not the
// other way around) can carry a TraceContext across ThreadPool batch
// submission without a link dependency on sketchlink_obs: the pool only
// copies the context — it never dereferences the Tracer or the per-trace
// buffer, so the opaque pointers are enough.
//
// The context identifies "the span work on this thread currently belongs
// to": spans started while a context is installed become children of
// context.span_id inside context.trace_id. ThreadPool::RunShards captures
// the submitting thread's context into the batch and installs it on every
// thread that drains the batch (workers and the submitter alike), which is
// what parents worker-side spans to the submitting query. See
// obs/spans.h for the Span/Tracer types that produce and consume this.

#include <cstdint>

namespace sketchlink::obs {

class Tracer;
struct TraceData;

/// The ambient trace of the current thread. Inactive (tracer == nullptr)
/// means "no trace is collecting here" — span creation is a null check and
/// nothing else.
struct TraceContext {
  Tracer* tracer = nullptr;
  TraceData* data = nullptr;  // per-trace span accumulator, owned by tracer
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // parent of spans started under this context

  bool active() const { return tracer != nullptr; }
};

/// Mutable thread-local slot holding the ambient context.
inline TraceContext& CurrentTraceContext() {
  thread_local TraceContext context;
  return context;
}

/// Installs `context` for the current scope and restores the previous one
/// on destruction. Copy-in/copy-out of a 4-pointer struct: cheap enough to
/// wrap every pool batch unconditionally.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context)
      : saved_(CurrentTraceContext()) {
    CurrentTraceContext() = context;
  }
  ~ScopedTraceContext() { CurrentTraceContext() = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_TRACE_CONTEXT_H_

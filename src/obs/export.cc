#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "obs/json.h"

namespace sketchlink::obs {

std::string SanitizeMetricName(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':' || (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    if (!ok) out[i] = '_';
  }
  return out;
}

namespace {

/// Escapes a label value per the text format: backslash, quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes HELP text per the text format: backslash and newline (quotes are
/// legal in HELP, unlike in label values). A carriage return would also
/// break line-oriented parsers, so it is folded into the \n escape.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{key="value",...}` (empty string when no labels). `extra` is an
/// optional pre-rendered label (the histogram `le`).
std::string RenderLabels(const MetricId& id, const std::string& extra = {}) {
  if (id.labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : id.labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeMetricName(key) + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string FormatU64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

void EmitFamilyHeader(std::string* out, std::set<std::string>* seen,
                      const std::string& name, const std::string& help,
                      const char* type) {
  if (!seen->insert(name).second) return;
  if (!help.empty()) *out += "# HELP " + name + " " + EscapeHelp(help) + "\n";
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string ExportPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  std::set<std::string> seen_families;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    const std::string name = SanitizeMetricName(metric.id.name);
    switch (metric.kind) {
      case MetricKind::kCounter:
        EmitFamilyHeader(&out, &seen_families, name, metric.id.help, "counter");
        out += name + RenderLabels(metric.id) + " " +
               FormatU64(metric.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        EmitFamilyHeader(&out, &seen_families, name, metric.id.help, "gauge");
        out += name + RenderLabels(metric.id) + " " +
               FormatDouble(metric.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        EmitFamilyHeader(&out, &seen_families, name, metric.id.help,
                         "histogram");
        const HistogramSnapshot& hist = metric.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          if (hist.buckets[i] == 0) continue;  // cumulative encoding: elidable
          cumulative += hist.buckets[i];
          out += name + "_bucket" +
                 RenderLabels(metric.id,
                              "le=\"" +
                                  FormatU64(HistogramSnapshot::BucketUpperBound(
                                      i)) +
                                  "\"") +
                 " " + FormatU64(cumulative) + "\n";
        }
        out += name + "_bucket" + RenderLabels(metric.id, "le=\"+Inf\"") + " " +
               FormatU64(cumulative) + "\n";
        out += name + "_sum" + RenderLabels(metric.id) + " " +
               FormatU64(hist.sum) + "\n";
        out += name + "_count" + RenderLabels(metric.id) + " " +
               FormatU64(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [\n";
  for (size_t m = 0; m < snapshot.metrics.size(); ++m) {
    const MetricSnapshot& metric = snapshot.metrics[m];
    JsonFields fields;
    fields.Add("name", metric.id.name);
    if (!metric.id.labels.empty()) {
      JsonFields labels;
      for (const auto& [key, value] : metric.id.labels) {
        labels.Add(key, value);
      }
      fields.AddRaw("labels", labels.ToJson());
    }
    switch (metric.kind) {
      case MetricKind::kCounter:
        fields.Add("kind", "counter");
        fields.Add("value", metric.counter_value);
        break;
      case MetricKind::kGauge:
        fields.Add("kind", "gauge");
        fields.Add("value", metric.gauge_value);
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& hist = metric.histogram;
        fields.Add("kind", "histogram");
        fields.Add("count", hist.count());
        fields.Add("sum", hist.sum);
        fields.Add("max", hist.max);
        fields.Add("mean", hist.Mean());
        fields.Add("p50", hist.p50());
        fields.Add("p95", hist.p95());
        fields.Add("p99", hist.p99());
        std::string buckets = "[";
        bool first = true;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          if (hist.buckets[i] == 0) continue;
          if (!first) buckets += ", ";
          first = false;
          JsonFields bucket;
          bucket.Add("le", HistogramSnapshot::BucketUpperBound(i));
          bucket.Add("count", hist.buckets[i]);
          buckets += bucket.ToJson();
        }
        buckets += "]";
        fields.AddRaw("buckets", std::move(buckets));
        break;
      }
    }
    out += "    " + fields.ToJson();
    if (m + 1 < snapshot.metrics.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string ExportTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    JsonFields fields;
    fields.Add("sequence", events[i].sequence);
    fields.Add("category", events[i].category);
    fields.Add("label", events[i].label);
    fields.Add("start_steady_nanos", events[i].start_steady_nanos);
    fields.Add("start_unix_micros", events[i].start_unix_micros);
    fields.Add("duration_nanos", events[i].duration_nanos);
    out += "  " + fields.ToJson();
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string ExportChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    JsonFields fields;
    fields.Add("name", span.name);
    fields.Add("cat", span.category);
    fields.Add("ph", "X");  // complete event: ts + dur in one record
    fields.Add("ts", static_cast<double>(span.start_steady_nanos) / 1000.0);
    fields.Add("dur", static_cast<double>(span.duration_nanos) / 1000.0);
    fields.Add("pid", static_cast<uint64_t>(1));
    fields.Add("tid", static_cast<uint64_t>(span.thread_ordinal));
    JsonFields args;
    args.Add("trace_id", span.trace_id);
    args.Add("span_id", span.span_id);
    args.Add("parent_span_id", span.parent_id);
    args.Add("start_unix_micros", span.start_unix_micros);
    args.AddRaw("error", span.error ? "true" : "false");
    fields.AddRaw("args", args.ToJson());
    out += "  " + fields.ToJson();
    if (i + 1 < spans.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) return Status::IOError("cannot write " + path);
  return Status::OK();
}

}  // namespace sketchlink::obs

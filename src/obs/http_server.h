#ifndef SKETCHLINK_OBS_HTTP_SERVER_H_
#define SKETCHLINK_OBS_HTTP_SERVER_H_

// Dependency-free scrape endpoint: a minimal POSIX-socket HTTP/1.1 server
// good for exactly what a telemetry plane needs — GET against a handful of
// registered paths, one connection at a time, serialized on a single serve
// thread. That deliberately is not a web server: scrapers (Prometheus,
// curl, metrics_dump --url) poll at human timescales, and a serial accept
// loop keeps the whole thing auditable — no connection pool, no TLS, no
// request body handling. Requests are capped at 8 KiB and anything that is
// not a well-formed GET gets 400/404/405 as appropriate. A peer that stops
// sending (or reading) mid-request is cut off after Options::io_timeout_ms
// so one stalled client can never wedge the serve thread (the service
// plane, serve::Server, multiplexes connections instead).
//
// The request/response types and parsing live in obs/http_message.h,
// shared with the concurrent service plane in src/serve.
//
// Lifecycle: AddHandler while stopped, Start() binds + spawns the serve
// thread (port 0 picks an ephemeral port, see port()), Stop() wakes the
// serve thread through a self-pipe and joins it. Destruction stops.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/http_message.h"

namespace sketchlink::obs {

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral: the bound port is published via port() after Start.
    uint16_t port = 0;
    /// Sets SO_REUSEADDR before bind so a restarted server can rebind its
    /// fixed port while the previous socket lingers in TIME_WAIT. Off by
    /// default: without it, binding a port a live server holds fails loudly
    /// instead of two processes silently splitting scrapes. Note
    /// SO_REUSEADDR does NOT allow stealing a port another process is
    /// actively listening on (that is SO_REUSEPORT, which this server never
    /// sets), so the port-in-use failure mode survives in both modes.
    bool reuse_address = false;
    /// Per-connection I/O budget: a client that connects but never finishes
    /// sending its request — or never drains the response — is disconnected
    /// after this long, so the serial serve thread cannot be wedged
    /// indefinitely by one stalled peer. 0 waits forever (the historical,
    /// wedge-prone behavior; kept only for tests).
    uint64_t io_timeout_ms = 5000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(const Options& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path`. Must be called before
  /// Start (handlers are read without locking on the serve thread).
  void AddHandler(std::string path, Handler handler);

  /// Binds, listens, and spawns the serve thread. IOError when the address
  /// is unavailable (e.g. port already in use).
  Status Start();

  /// Stops the serve thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return listen_fd_ >= 0; }

  /// The bound port (resolves ephemeral port 0); valid after Start.
  uint16_t port() const { return port_; }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  Options options_;
  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // Stop() writes, ServeLoop polls
  uint16_t port_ = 0;
  std::thread serve_thread_;
};

/// Minimal HTTP/1.0-style GET client (the other half of the scrape pair;
/// used by `metrics_dump --url` and the endpoint tests). Connects, sends
/// one GET, reads to EOF, strips the header block. Transport failures and
/// non-2xx statuses are non-OK; `*body` still holds the response body when
/// one was readable (so callers can surface server-side error messages).
/// `status_code` (optional) receives the parsed status line code.
Status HttpGet(const std::string& host, uint16_t port, const std::string& path,
               std::string* body, int* status_code = nullptr);

class Registry;
class Tracer;

/// The standard telemetry surface, as path->handler pairs:
///   /metrics       Prometheus text exposition of `registry`
///   /metrics.json  JSON exposition of `registry`
///   /traces        Chrome trace_event JSON of `tracer`'s kept spans
///                  (empty traceEvents when `tracer` is null; honors a
///                  ?limit=N query parameter on the span count)
///   /healthz       "ok\n"
/// `registry` and `tracer` must outlive any server the handlers are
/// registered on.
std::vector<std::pair<std::string, HttpServer::Handler>> TelemetryHandlers(
    Registry* registry, Tracer* tracer);

/// Wires TelemetryHandlers onto `server`.
void RegisterTelemetryHandlers(HttpServer* server, Registry* registry,
                               Tracer* tracer);

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_HTTP_SERVER_H_

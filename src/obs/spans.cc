#include "obs/spans.h"

#include <algorithm>
#include <utility>

namespace sketchlink::obs {

uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

bool TraceData::Append(SpanRecord&& record) {
  // Post-cap fast path: once a trace overflowed, concurrent appenders must
  // not keep taking the mutex just to be turned away.
  if (recorded.load(std::memory_order_relaxed) >= max_spans) return false;
  std::lock_guard<std::mutex> lock(mutex);
  if (spans.size() >= max_spans) return false;
  spans.push_back(std::move(record));
  recorded.store(spans.size(), std::memory_order_relaxed);
  return true;
}

SpanBuffer::SpanBuffer(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  slots_.reserve(std::min<size_t>(capacity_, 1024));
}

void SpanBuffer::Record(std::vector<SpanRecord>&& spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (SpanRecord& span : spans) {
    if (slots_.size() < capacity_) {
      slots_.push_back(std::move(span));
    } else {
      slots_[next_index_ % capacity_] = std::move(span);
    }
    ++next_index_;
  }
}

std::vector<SpanRecord> SpanBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(slots_.size());
  // The ring wraps at next_index_ % capacity_: everything from there to the
  // end is older than everything before it.
  const size_t pivot = slots_.size() < capacity_ ? 0 : next_index_ % capacity_;
  for (size_t i = 0; i < slots_.size(); ++i) {
    out.push_back(slots_[(pivot + i) % slots_.size()]);
  }
  return out;
}

uint64_t SpanBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_index_;
}

Tracer::Tracer(const Options& options)
    : options_(options), buffer_(options.buffer_capacity) {}

Tracer::~Tracer() = default;

TraceData* Tracer::AcquireData() {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceData* data;
  if (!free_.empty()) {
    data = free_.back().release();
    free_.pop_back();
  } else {
    pool_.push_back(std::make_unique<TraceData>());
    data = pool_.back().get();
    // Ownership stays with pool_; free_ holds non-owning aliases disguised
    // as unique_ptr for vector ergonomics — release() above undoes the
    // alias without deleting.
    pool_.back().release();
    pool_.pop_back();
  }
  data->Reset(next_trace_id_++, options_.max_spans_per_trace);
  return data;
}

void Tracer::ReleaseData(TraceData* data) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.emplace_back(data);
}

TraceScope Tracer::StartTrace(std::string_view category,
                              std::string_view name, bool force) {
  const uint32_t period = options_.sample_period;
  if (period == 0) return TraceScope();  // tracing off: no metric writes
  if (!force && period > 1) {
    thread_local uint64_t admission_tick = 0;
    if (admission_tick++ % period != 0) {
      // Un-admitted: mask any enclosing trace (a forced phase trace, say)
      // so this request's spans take the no-tracer fast path instead of
      // leaking into it as strays until its cap.
      TraceContext& current = CurrentTraceContext();
      if (current.tracer == nullptr) return TraceScope();
      TraceScope scope;
      scope.suppress_ = true;
      scope.saved_ = current;
      current = TraceContext();
      return scope;
    }
    // Stride accounting: the tick is per-thread and deterministic, so each
    // admission stands for exactly `period` StartTrace calls on this
    // thread. Keeps the un-admitted path free of shared-cache-line writes
    // (exact up to one in-flight stride per thread).
    metrics_.traces_started.Add(period);
  } else {
    metrics_.traces_started.Inc();
  }
  metrics_.traces_admitted.Inc();
  return TraceScope(this, AcquireData(), category, name);
}

void Tracer::FinishSpan(TraceData* data, SpanRecord&& record) {
  if (record.error) data->error.store(true, std::memory_order_relaxed);
  if (!data->Append(std::move(record))) metrics_.spans_dropped.Inc();
}

void Tracer::FinishTrace(TraceData* data, uint64_t root_duration_nanos) {
  bool keep = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (data->error.load(std::memory_order_relaxed)) {
      keep = true;
      metrics_.traces_error.Inc();
    }
    // Slowest-N of the window: a min-heap of the N largest root durations;
    // front() is the bar to clear.
    if (slow_durations_.size() < options_.slowest_per_window) {
      slow_durations_.push_back(root_duration_nanos);
      std::push_heap(slow_durations_.begin(), slow_durations_.end(),
                     std::greater<uint64_t>());
      if (!keep) metrics_.traces_slow.Inc();
      keep = true;
    } else if (!slow_durations_.empty() &&
               root_duration_nanos > slow_durations_.front()) {
      std::pop_heap(slow_durations_.begin(), slow_durations_.end(),
                    std::greater<uint64_t>());
      slow_durations_.back() = root_duration_nanos;
      std::push_heap(slow_durations_.begin(), slow_durations_.end(),
                     std::greater<uint64_t>());
      if (!keep) metrics_.traces_slow.Inc();
      keep = true;
    }
    if (!keep && options_.keep_period > 0 &&
        keep_tick_++ % options_.keep_period == 0) {
      keep = true;
    }
    if (++window_completed_ >= options_.window_traces) {
      window_completed_ = 0;
      slow_durations_.clear();
    }
  }
  if (keep) {
    metrics_.traces_kept.Inc();
    std::vector<SpanRecord> spans;
    {
      std::lock_guard<std::mutex> lock(data->mutex);
      spans = std::move(data->spans);
      data->spans.clear();
    }
    buffer_.Record(std::move(spans));
  }
  ReleaseData(data);
}

std::vector<Registration> Tracer::RegisterMetrics(Registry* registry,
                                                  const std::string& instance) {
  std::vector<Registration> regs;
  if (registry == nullptr) return regs;
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"instance", instance}};
  const auto add = [&](const char* name, const char* help,
                       const Counter* counter) {
    regs.push_back(
        registry->AddCounter(MetricId(name, help, labels), counter));
  };
  add("sketchlink_trace_started_total", "StartTrace calls",
      &metrics_.traces_started);
  add("sketchlink_trace_admitted_total",
      "Traces that recorded spans (head sampling)",
      &metrics_.traces_admitted);
  add("sketchlink_trace_kept_total",
      "Admitted traces retained by the tail sampler", &metrics_.traces_kept);
  add("sketchlink_trace_kept_error_total", "Traces kept for an error span",
      &metrics_.traces_error);
  add("sketchlink_trace_kept_slow_total",
      "Traces kept as slowest-N of their window", &metrics_.traces_slow);
  add("sketchlink_trace_spans_dropped_total",
      "Spans dropped by the per-trace cap", &metrics_.spans_dropped);
  regs.push_back(registry->AddCounterFn(
      MetricId("sketchlink_trace_buffer_spans_total",
               "Spans recorded into the span buffer", labels),
      [this] { return buffer_.total_recorded(); }));
  return regs;
}

TraceScope::TraceScope(Tracer* tracer, TraceData* data,
                       std::string_view category, std::string_view name)
    : tracer_(tracer), data_(data), saved_(CurrentTraceContext()) {
  record_.trace_id = data->trace_id;
  record_.span_id = 1;
  record_.parent_id = 0;
  record_.category.assign(category.data(), category.size());
  record_.name.assign(name.data(), name.size());
  record_.start_steady_nanos = SteadyNowNanos();
  record_.start_unix_micros = UnixNowMicros();
  record_.thread_ordinal = ThreadOrdinal();
  TraceContext context;
  context.tracer = tracer;
  context.data = data;
  context.trace_id = data->trace_id;
  context.span_id = 1;
  CurrentTraceContext() = context;
}

TraceScope& TraceScope::operator=(TraceScope&& other) noexcept {
  if (this != &other) {
    tracer_ = other.tracer_;
    data_ = other.data_;
    suppress_ = other.suppress_;
    record_ = std::move(other.record_);
    saved_ = other.saved_;
    other.tracer_ = nullptr;
    other.data_ = nullptr;
    other.suppress_ = false;
  }
  return *this;
}

void TraceScope::MarkError() {
  record_.error = true;
  if (data_ != nullptr) data_->error.store(true, std::memory_order_relaxed);
}

TraceScope::~TraceScope() {
  if (suppress_) {
    CurrentTraceContext() = saved_;
    return;
  }
  if (tracer_ == nullptr) return;
  CurrentTraceContext() = saved_;
  record_.duration_nanos = SteadyNowNanos() - record_.start_steady_nanos;
  const uint64_t duration = record_.duration_nanos;
  TraceData* data = data_;
  // The root span bypasses the cap: a kept trace without its root would be
  // unparseable, and there is exactly one root per trace.
  if (record_.error) data->error.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(data->mutex);
    data->spans.push_back(std::move(record_));
  }
  tracer_->FinishTrace(data, duration);
}

void Span::Begin(const TraceContext& context, std::string_view category,
                 std::string_view name) {
  TraceData* data = context.data;
  // Overflowed trace: skip the clock reads and the doomed append entirely
  // (the drop still counts — overflow must be visible in the metrics).
  if (data->recorded.load(std::memory_order_relaxed) >= data->max_spans) {
    context.tracer->metrics_.spans_dropped.Inc();
    return;
  }
  active_ = true;
  tracer_ = context.tracer;
  data_ = data;
  record_.trace_id = context.trace_id;
  record_.span_id = data->next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_.parent_id = context.span_id;
  record_.category.assign(category.data(), category.size());
  record_.name.assign(name.data(), name.size());
  record_.start_steady_nanos = SteadyNowNanos();
  record_.start_unix_micros = UnixNowMicros();
  record_.thread_ordinal = ThreadOrdinal();
  saved_ = context;
  TraceContext child = context;
  child.span_id = record_.span_id;
  CurrentTraceContext() = child;
}

void Span::End() {
  CurrentTraceContext() = saved_;
  record_.duration_nanos = SteadyNowNanos() - record_.start_steady_nanos;
  tracer_->FinishSpan(data_, std::move(record_));
  active_ = false;
}

void Span::MarkError() {
  if (!active_) return;
  record_.error = true;
  data_->error.store(true, std::memory_order_relaxed);
}

}  // namespace sketchlink::obs

#include "obs/url.h"

#include <cctype>
#include <cstdlib>

namespace sketchlink::obs {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string PercentDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < in.size()) {
      const int hi = HexDigit(in[i + 1]);
      const int lo = HexDigit(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
      } else {
        out += c;  // malformed escape: pass through verbatim
      }
    } else {
      out += c;
    }
  }
  return out;
}

QueryParams QueryParams::Parse(std::string_view query) {
  QueryParams result;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        result.params_.emplace_back(PercentDecode(pair), "");
      } else {
        result.params_.emplace_back(PercentDecode(pair.substr(0, eq)),
                                    PercentDecode(pair.substr(eq + 1)));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return result;
}

std::optional<std::string_view> QueryParams::Get(std::string_view key) const {
  for (const auto& [name, value] : params_) {
    if (name == key) return std::string_view(value);
  }
  return std::nullopt;
}

uint64_t QueryParams::GetInt(std::string_view key, uint64_t fallback) const {
  const auto value = Get(key);
  if (!value.has_value() || value->empty()) return fallback;
  // strtoull silently wraps a leading '-'; a non-negative integer must
  // start with a digit.
  if (!std::isdigit(static_cast<unsigned char>(value->front()))) {
    return fallback;
  }
  char* end = nullptr;
  const std::string copy(*value);
  const uint64_t parsed = std::strtoull(copy.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return parsed;
}

}  // namespace sketchlink::obs

#ifndef SKETCHLINK_OBS_INSTRUMENTS_H_
#define SKETCHLINK_OBS_INSTRUMENTS_H_

// Hot-path observability instruments. Everything in this header is designed
// to sit inside a component (by value, not behind a pointer) and be updated
// from several threads at plain-integer cost: counters and histogram buckets
// are relaxed atomics, so individual updates are race-free while a snapshot
// of several instruments is a consistent-enough cut for dashboards, not a
// linearizable one (see DESIGN.md, Observability).

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/counter.h"

namespace sketchlink::obs {

/// Monotone event counter. A thin veneer over RelaxedCounter so call sites
/// read as instrumentation, plus the Merge operation shard aggregation uses.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_ = other.value();
    return *this;
  }

  void Inc() { ++value_; }
  void Add(uint64_t delta) { value_ += delta; }
  uint64_t value() const { return value_.value(); }

  /// Shard aggregation: adds `other`'s current value into this counter.
  void Merge(const Counter& other) { value_ += other.value(); }

 private:
  RelaxedCounter value_;
};

/// Last-value instrument for levels (queue depth, live blocks, bytes).
/// Signed so deltas can go negative; relaxed like the counters.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    Set(other.value());
    return *this;
  }

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Running maximum maintained with a relaxed CAS loop.
class RelaxedMax {
 public:
  RelaxedMax() = default;
  RelaxedMax(const RelaxedMax& other) : value_(other.value()) {}
  RelaxedMax& operator=(const RelaxedMax& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Update(uint64_t candidate) {
    uint64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }
  void Merge(const RelaxedMax& other) { Update(other.value()); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Number of histogram buckets: one for the value 0 plus one per power of
/// two, covering the whole uint64 range (nanosecond latencies up to ~585
/// years fit with room to spare).
inline constexpr size_t kHistogramBuckets = 65;

/// Point-in-time copy of a histogram, and the unit of shard aggregation:
/// because every histogram shares the same power-of-two bucket boundaries,
/// Merge is exact bucket-wise addition (a true re-bucketing of the union of
/// samples), never an average of derived quantiles.
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t sum = 0;
  uint64_t max = 0;

  /// Total samples (always the sum over buckets, so count and buckets are
  /// self-consistent even when the snapshot raced with writers).
  uint64_t count() const;

  /// Exact union: adds `other`'s buckets/sum and takes the larger max.
  void Merge(const HistogramSnapshot& other);

  /// Nearest-rank percentile, p in (0, 1]. Reports the upper bound of the
  /// bucket holding the target rank (clamped to the observed max), so the
  /// estimate is never below the true percentile and at most one bucket
  /// width (2x) above it. 0 when empty.
  uint64_t Percentile(double p) const;

  uint64_t p50() const { return Percentile(0.50); }
  uint64_t p95() const { return Percentile(0.95); }
  uint64_t p99() const { return Percentile(0.99); }
  double Mean() const;

  /// Inclusive value range of bucket `index`: bucket 0 holds only 0, bucket
  /// i >= 1 holds [2^(i-1), 2^i - 1].
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);
};

/// Mergeable log-bucketed histogram for latency/size distributions. Record
/// is three relaxed atomic updates (bucket, sum, max) — cheap enough for
/// per-query paths; percentile extraction happens on snapshots, off the hot
/// path.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)] += 1;
    sum_ += value;
    max_.Update(value);
  }

  /// Bucket-wise addition of `other`'s current contents (exact merge; both
  /// histograms share the same boundaries).
  void Merge(const Histogram& other) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      buckets_[i] += other.buckets_[i].value();
    }
    sum_ += other.sum_.value();
    max_.Merge(other.max_);
  }

  /// Adds a previously taken snapshot (used when aggregating shard
  /// snapshots into one mergeable accumulator).
  void MergeSnapshot(const HistogramSnapshot& snap) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) buckets_[i] += snap.buckets[i];
    sum_ += snap.sum;
    max_.Update(snap.max);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      snap.buckets[i] = buckets_[i].value();
    }
    snap.sum = sum_.value();
    snap.max = max_.value();
    return snap;
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const auto& bucket : buckets_) total += bucket.value();
    return total;
  }

  /// Bucket of `value`: 0 for 0, otherwise its bit width (1..64).
  static size_t BucketIndex(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

 private:
  std::array<RelaxedCounter, kHistogramBuckets> buckets_;
  RelaxedCounter sum_;
  RelaxedMax max_;
};

/// Histogram for per-query paths shared by many threads. A plain Histogram
/// puts every recording thread on the same two or three cache lines (the
/// hot buckets plus sum/max), and at µs-scale operations that ping-pong
/// dominates the operation itself. Each thread records into one of a few
/// cache-line-aligned stripes instead; Snapshot() is the exact bucket-wise
/// merge, so nothing about the exported distribution changes.
class StripedHistogram {
 public:
  static constexpr size_t kStripes = 8;

  void Record(uint64_t value) { stripes_[StripeIndex()].hist.Record(value); }

  /// Exact union of all stripes (same boundaries, bucket-wise addition).
  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (const auto& stripe : stripes_) snap.Merge(stripe.hist.Snapshot());
    return snap;
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const auto& stripe : stripes_) total += stripe.hist.count();
    return total;
  }

 private:
  struct alignas(64) Stripe {
    Histogram hist;
  };

  /// Threads are assigned stripes round-robin on first use; the modulo only
  /// matters beyond kStripes concurrent threads, where stripes are shared
  /// (still correct, just contended again).
  static size_t StripeIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return index;
  }

  std::array<Stripe, kStripes> stripes_;
};

/// Scoped latency measurement. Constructed with a null histogram it does
/// nothing — not even read the clock — which is how components keep the
/// disabled-observability path at zero added cost. `H` is Histogram or
/// StripedHistogram.
template <typename H>
class BasicLatencyTimer {
 public:
  explicit BasicLatencyTimer(H* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }
  ~BasicLatencyTimer() {
    if (histogram_ != nullptr) Stop();
  }

  BasicLatencyTimer(const BasicLatencyTimer&) = delete;
  BasicLatencyTimer& operator=(const BasicLatencyTimer&) = delete;

  /// Records the elapsed time now and detaches; returns the recorded
  /// nanoseconds (0 when the timer is disabled). Idempotent via detach.
  uint64_t Stop() {
    if (histogram_ == nullptr) return 0;
    const uint64_t nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
    histogram_->Record(nanos);
    histogram_ = nullptr;
    return nanos;
  }

  /// Detaches without recording — for speculative measurements where the
  /// interesting case (e.g. an actual disk load) is only known afterwards.
  void Cancel() { histogram_ = nullptr; }

  bool enabled() const { return histogram_ != nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  H* histogram_;
  Clock::time_point start_;
};

using LatencyTimer = BasicLatencyTimer<Histogram>;
using StripedLatencyTimer = BasicLatencyTimer<StripedHistogram>;

/// Latency sampling period (as log2) for microsecond-scale hot paths: a
/// timer pair costs two clock reads (~40ns each on a tsc clocksource, far
/// more on VMs without a vDSO clock), which is >5% of a single µs-scale
/// query. Timing every 2^3 = 8th operation keeps the histogram's percentile
/// estimates (hundreds of samples per second on any busy path) while the
/// amortized cost drops under 1%. Millisecond-scale operations (flush,
/// compaction, spill I/O, batch submission) are timed unconditionally.
inline constexpr uint32_t kLatencySamplePeriodLog2 = 3;

}  // namespace sketchlink::obs

/// True on every 2^kLatencySamplePeriodLog2-th evaluation per thread *and*
/// per call site (the lambda gives each expansion its own thread_local
/// tick, so nested sampled sections do not steal each other's ticks).
/// Sampled histograms count samples, not operations — pair them with an
/// always-on counter for rates (see DESIGN.md, Observability).
#define SKETCHLINK_OBS_SAMPLE_HIT()                                          \
  ([] {                                                                      \
    thread_local uint32_t obs_sample_tick = 0;                               \
    return (obs_sample_tick++ &                                              \
            ((1u << ::sketchlink::obs::kLatencySamplePeriodLog2) - 1)) == 0; \
  }())

namespace sketchlink::obs {

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_INSTRUMENTS_H_

#ifndef SKETCHLINK_OBS_HTTP_MESSAGE_H_
#define SKETCHLINK_OBS_HTTP_MESSAGE_H_

// HTTP/1.1 message plumbing shared by the two servers in the tree: the
// serial telemetry scraper (obs::HttpServer) and the concurrent service
// plane (serve::Server / serve::EventLoop). One request/response
// representation, one incremental parser, one serializer, and poll-bounded
// socket helpers — so request-body support, header handling, and slow-peer
// timeouts behave identically no matter which server a connection hit.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sketchlink::obs {

/// One parsed HTTP request. Header names are lower-cased at parse time;
/// values keep their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;  // "GET", "POST", "DELETE", ...
  std::string path;    // "/metrics" (query string stripped into `query`)
  std::string query;   // after '?', raw (see obs::QueryParams to parse)
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;    // Content-Length bytes (empty for bodyless requests)

  /// First value of header `name` (lower-case), or "" when absent.
  std::string_view Header(std::string_view name) const;
};

/// One HTTP response under construction. `headers` carries extra headers
/// (e.g. Retry-After) appended after the standard Content-Type /
/// Content-Length pair.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase of `status` ("OK", "Too Many Requests", ...).
const char* HttpReasonPhrase(int status);

/// Renders the full wire bytes of `response`. `keep_alive` selects the
/// Connection header ("keep-alive" vs "close"); the serialization with no
/// extra headers and keep_alive=false is byte-identical to the historical
/// telemetry server output.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

/// Incremental request parser for one connection. Feed() raw bytes as they
/// arrive; once Done() the parsed request is available and any pipelined
/// surplus bytes can be reclaimed with TakeLeftover() before Reset().
///
/// Limits: the header block is capped at `max_head_bytes`, the body at
/// `max_body_bytes` (Content-Length beyond it is rejected up front with
/// 413, without buffering). Transfer-Encoding is not supported (501).
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpRequestParser(size_t max_head_bytes = 8 * 1024,
                             size_t max_body_bytes = 4 * 1024 * 1024);

  /// Appends `data` and advances the parse. Returns the new state; further
  /// Feed() calls after kComplete/kError are ignored (state is sticky until
  /// Reset).
  State Feed(std::string_view data);

  State state() const { return state_; }
  bool done() const { return state_ == State::kComplete; }

  /// The parsed request; valid once done().
  const HttpRequest& request() const { return request_; }
  HttpRequest& mutable_request() { return request_; }

  /// HTTP status to answer with when state() == kError (400/413/431/501).
  int error_status() const { return error_status_; }

  /// True when the peer may send another request on this connection
  /// (HTTP/1.1 without "Connection: close", or HTTP/1.0 with an explicit
  /// keep-alive). Valid once done().
  bool keep_alive() const { return keep_alive_; }

  /// True when at least one byte of the current request has been fed (used
  /// to distinguish an idle keep-alive connection from a stalled request).
  bool started() const {
    return headers_parsed_ || !buffer_.empty() || state_ != State::kNeedMore;
  }

  /// Bytes received beyond the parsed request (pipelining); valid once
  /// done(). Feed them back after Reset().
  std::string TakeLeftover();

  /// Clears all state for the next request on the same connection.
  void Reset();

 private:
  State Fail(int status);
  State Advance();

  const size_t max_head_bytes_;
  const size_t max_body_bytes_;
  State state_ = State::kNeedMore;
  int error_status_ = 400;
  bool headers_parsed_ = false;
  bool keep_alive_ = false;
  size_t body_needed_ = 0;
  std::string buffer_;   // unparsed raw bytes (head, then body remainder)
  std::string leftover_;
  HttpRequest request_;
};

/// Sends all of `data`, polling for writability with a per-call deadline of
/// `timeout_ms` (0 = wait forever, the historical behavior). False on
/// error or timeout.
bool SendAllWithTimeout(int fd, const char* data, size_t size,
                        uint64_t timeout_ms);

/// Receives up to `size` bytes, polling up to `timeout_ms` for readability
/// first (0 = wait forever). Returns bytes read, 0 on orderly shutdown, -1
/// on error, -2 on timeout.
ssize_t RecvWithTimeout(int fd, char* buf, size_t size, uint64_t timeout_ms);

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_HTTP_MESSAGE_H_

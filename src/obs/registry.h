#ifndef SKETCHLINK_OBS_REGISTRY_H_
#define SKETCHLINK_OBS_REGISTRY_H_

// Process-wide metric registry. Components embed their instruments by value
// (always counting, at relaxed-atomic cost) and *register* them here for
// export; registration is pull-based — the registry stores a read closure
// per metric and invokes it at snapshot time — so live values (memory use,
// live-block counts, shard-merged histograms) need no push plumbing.
//
// Snapshot consistency semantics: TakeSnapshot() reads each metric with one
// closure invocation under the registry mutex. Each *instrument* is
// internally consistent (a counter is one relaxed load; a histogram
// snapshot's count is derived from its buckets), but the cut *across*
// instruments is not linearizable — concurrent updates may be visible in
// one metric and not another. That is the documented contract: good enough
// for dashboards and rate computation, not for invariant checking.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/instruments.h"
#include "obs/trace_ring.h"

namespace sketchlink::obs {

class MetricRegistry;

/// Identity of one exported metric: a Prometheus-style name plus ordered
/// key/value labels and a help string.
struct MetricId {
  std::string name;
  std::string help;
  std::vector<std::pair<std::string, std::string>> labels;

  MetricId() = default;
  MetricId(std::string name_in, std::string help_in,
           std::vector<std::pair<std::string, std::string>> labels_in = {})
      : name(std::move(name_in)),
        help(std::move(help_in)),
        labels(std::move(labels_in)) {}
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric in a registry snapshot. Only the field matching `kind` is
/// meaningful.
struct MetricSnapshot {
  MetricId id;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramSnapshot histogram;
};

/// A consistent-enough cut of every registered metric, in registration
/// order (see the consistency note at the top of this header).
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Convenience lookup by name (+ optional instance label); nullptr when
  /// absent. Linear — snapshot-sized, not hot.
  const MetricSnapshot* Find(std::string_view name,
                             std::string_view instance = {}) const;
};

/// RAII registration handle: dropping it removes the metric from the
/// registry. Components keep one per registered metric so a component's
/// destruction deregisters its closures before the instruments they read
/// are torn down (TakeSnapshot holds the registry mutex while invoking
/// closures, and deregistration takes the same mutex, so after Release
/// returns no closure of this metric can be running).
class Registration {
 public:
  Registration() = default;
  Registration(Registration&& other) noexcept { *this = std::move(other); }
  Registration& operator=(Registration&& other) noexcept;
  ~Registration() { Release(); }

  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;

  /// Deregisters now (idempotent).
  void Release();

  bool active() const { return owner_ != nullptr; }

 private:
  friend class MetricRegistry;
  Registration(MetricRegistry* owner, uint64_t token)
      : owner_(owner), token_(token) {}

  MetricRegistry* owner_ = nullptr;
  uint64_t token_ = 0;
};

/// Abstract registry every component reports into. Two implementations:
/// MetricRegistry (real) and NullRegistry (zero-cost sink). Components gate
/// their latency timers on enabled(), so wiring a NullRegistry — or no
/// registry at all — costs nothing beyond the relaxed counters they would
/// maintain anyway.
class Registry {
 public:
  virtual ~Registry() = default;

  /// False only for NullRegistry: tells components to skip clock reads and
  /// other measurement-only work.
  virtual bool enabled() const = 0;

  /// Pull-model registration: `read` runs at snapshot time under the
  /// registry mutex and must be safe against concurrent instrument updates
  /// (all obs instruments are). The returned handle deregisters on drop.
  virtual Registration AddCounterFn(MetricId id,
                                    std::function<uint64_t()> read) = 0;
  virtual Registration AddGaugeFn(MetricId id,
                                  std::function<double()> read) = 0;
  virtual Registration AddHistogramFn(
      MetricId id, std::function<HistogramSnapshot()> read) = 0;

  virtual RegistrySnapshot TakeSnapshot() const = 0;

  /// Ring of recent slow operations; nullptr for NullRegistry.
  virtual TraceRing* trace_ring() = 0;

  /// Operations at least this long get a TraceSlow entry.
  virtual uint64_t slow_op_threshold_nanos() const = 0;

  // Convenience wrappers over the *Fn primitives. The instrument must
  // outlive the returned Registration.
  Registration AddCounter(MetricId id, const Counter* counter) {
    return AddCounterFn(std::move(id),
                        [counter] { return counter->value(); });
  }
  Registration AddGauge(MetricId id, const Gauge* gauge) {
    return AddGaugeFn(std::move(id), [gauge] {
      return static_cast<double>(gauge->value());
    });
  }
  /// Callback gauge for live values (memory use, queue depth, live blocks).
  Registration AddCallbackGauge(MetricId id, std::function<double()> read) {
    return AddGaugeFn(std::move(id), std::move(read));
  }
  Registration AddHistogram(MetricId id, const Histogram* histogram) {
    return AddHistogramFn(std::move(id),
                          [histogram] { return histogram->Snapshot(); });
  }

  /// Records `duration_nanos` into the trace ring when it crosses the
  /// slow-op threshold. Call only from already-slow paths.
  void TraceSlow(std::string_view category, std::string_view label,
                 uint64_t duration_nanos) {
    if (duration_nanos < slow_op_threshold_nanos()) return;
    TraceRing* ring = trace_ring();
    if (ring != nullptr) ring->Record(category, label, duration_nanos);
  }
};

/// The real registry: thread-safe registration/deregistration, snapshots in
/// registration order, and an embedded slow-op trace ring.
class MetricRegistry final : public Registry {
 public:
  struct Options {
    size_t trace_capacity = 256;
    /// Default slow-op threshold: 20ms — an eternity next to the
    /// microsecond-scale matching operations.
    uint64_t slow_op_threshold_nanos = 20'000'000;
  };

  MetricRegistry();
  explicit MetricRegistry(const Options& options);

  bool enabled() const override { return true; }

  Registration AddCounterFn(MetricId id,
                            std::function<uint64_t()> read) override;
  Registration AddGaugeFn(MetricId id, std::function<double()> read) override;
  Registration AddHistogramFn(MetricId id,
                              std::function<HistogramSnapshot()> read) override;

  RegistrySnapshot TakeSnapshot() const override;

  TraceRing* trace_ring() override { return &trace_ring_; }
  uint64_t slow_op_threshold_nanos() const override {
    return options_.slow_op_threshold_nanos;
  }

  /// Currently registered metrics.
  size_t num_metrics() const;

 private:
  friend class Registration;

  struct Entry {
    uint64_t token = 0;
    MetricId id;
    MetricKind kind = MetricKind::kCounter;
    std::function<uint64_t()> read_counter;
    std::function<double()> read_gauge;
    std::function<HistogramSnapshot()> read_histogram;
  };

  Registration AddEntry(Entry entry);
  void Unregister(uint64_t token);

  Options options_;
  TraceRing trace_ring_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // guarded by mutex_, registration order
  uint64_t next_token_ = 1;     // guarded by mutex_
};

/// The zero-cost sink: registrations are dropped, snapshots are empty, and
/// enabled() == false tells components to skip measurement work entirely.
class NullRegistry final : public Registry {
 public:
  /// Shared process-wide instance (stateless, safe to share).
  static NullRegistry* Get();

  bool enabled() const override { return false; }
  Registration AddCounterFn(MetricId, std::function<uint64_t()>) override {
    return Registration();
  }
  Registration AddGaugeFn(MetricId, std::function<double()>) override {
    return Registration();
  }
  Registration AddHistogramFn(MetricId,
                              std::function<HistogramSnapshot()>) override {
    return Registration();
  }
  RegistrySnapshot TakeSnapshot() const override { return RegistrySnapshot(); }
  TraceRing* trace_ring() override { return nullptr; }
  uint64_t slow_op_threshold_nanos() const override { return UINT64_MAX; }
};

/// Process-wide default registry for callers that want one shared sink
/// without threading a pointer through every constructor.
MetricRegistry& DefaultRegistry();

/// True when `registry` is non-null and enabled — the gate components use
/// before arming latency timers.
inline bool TimingEnabled(const Registry* registry) {
  return registry != nullptr && registry->enabled();
}

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_REGISTRY_H_

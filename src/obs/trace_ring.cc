#include "obs/trace_ring.h"

#include <algorithm>

#include "obs/clock.h"

namespace sketchlink::obs {

TraceRing::TraceRing(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {
  slots_.reserve(capacity_);
}

void TraceRing::Record(std::string_view category, std::string_view label,
                       uint64_t duration_nanos) {
  TraceEvent event;
  event.category.assign(category.data(), category.size());
  event.label.assign(label.data(), label.size());
  event.duration_nanos = duration_nanos;
  // Record runs right after the slow operation finished, so "now" is the
  // end time and now − duration recovers the start within scheduling noise.
  const uint64_t steady_now = SteadyNowNanos();
  event.start_steady_nanos =
      steady_now >= duration_nanos ? steady_now - duration_nanos : 0;
  const uint64_t unix_now = UnixNowMicros();
  const uint64_t duration_micros = duration_nanos / 1000;
  event.start_unix_micros =
      unix_now >= duration_micros ? unix_now - duration_micros : 0;

  std::lock_guard<std::mutex> lock(mutex_);
  event.sequence = next_sequence_++;
  if (slots_.size() < capacity_) {
    slots_.push_back(std::move(event));
  } else {
    slots_[event.sequence % capacity_] = std::move(event);
  }
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out(slots_.begin(), slots_.end());
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_;
}

}  // namespace sketchlink::obs

#include "obs/registry.h"

#include <algorithm>

#include "obs/export.h"

namespace sketchlink::obs {

const MetricSnapshot* RegistrySnapshot::Find(std::string_view name,
                                             std::string_view instance) const {
  for (const MetricSnapshot& metric : metrics) {
    if (metric.id.name != name) continue;
    if (instance.empty()) return &metric;
    for (const auto& [key, value] : metric.id.labels) {
      if (key == "instance" && value == instance) return &metric;
    }
  }
  return nullptr;
}

Registration& Registration::operator=(Registration&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = other.owner_;
    token_ = other.token_;
    other.owner_ = nullptr;
    other.token_ = 0;
  }
  return *this;
}

void Registration::Release() {
  if (owner_ != nullptr) {
    owner_->Unregister(token_);
    owner_ = nullptr;
    token_ = 0;
  }
}

MetricRegistry::MetricRegistry() : MetricRegistry(Options()) {}

MetricRegistry::MetricRegistry(const Options& options)
    : options_(options), trace_ring_(options.trace_capacity) {}

Registration MetricRegistry::AddEntry(Entry entry) {
  // Sanitize identity at the door: an invalid metric or label name (spaces,
  // dashes, unicode) must never survive to the exposition output, and
  // rewriting here keeps every later lookup (Find, exporters, validators)
  // seeing one canonical spelling.
  entry.id.name = SanitizeMetricName(entry.id.name);
  for (auto& [key, value] : entry.id.labels) key = SanitizeMetricName(key);
  std::lock_guard<std::mutex> lock(mutex_);
  entry.token = next_token_++;
  const uint64_t token = entry.token;
  entries_.push_back(std::move(entry));
  return Registration(this, token);
}

Registration MetricRegistry::AddCounterFn(MetricId id,
                                          std::function<uint64_t()> read) {
  Entry entry;
  entry.id = std::move(id);
  entry.kind = MetricKind::kCounter;
  entry.read_counter = std::move(read);
  return AddEntry(std::move(entry));
}

Registration MetricRegistry::AddGaugeFn(MetricId id,
                                        std::function<double()> read) {
  Entry entry;
  entry.id = std::move(id);
  entry.kind = MetricKind::kGauge;
  entry.read_gauge = std::move(read);
  return AddEntry(std::move(entry));
}

Registration MetricRegistry::AddHistogramFn(
    MetricId id, std::function<HistogramSnapshot()> read) {
  Entry entry;
  entry.id = std::move(id);
  entry.kind = MetricKind::kHistogram;
  entry.read_histogram = std::move(read);
  return AddEntry(std::move(entry));
}

void MetricRegistry::Unregister(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [token](const Entry& entry) {
                                  return entry.token == token;
                                }),
                 entries_.end());
}

RegistrySnapshot MetricRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  snapshot.metrics.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSnapshot metric;
    metric.id = entry.id;
    metric.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        metric.counter_value = entry.read_counter();
        break;
      case MetricKind::kGauge:
        metric.gauge_value = entry.read_gauge();
        break;
      case MetricKind::kHistogram:
        metric.histogram = entry.read_histogram();
        break;
    }
    snapshot.metrics.push_back(std::move(metric));
  }
  return snapshot;
}

size_t MetricRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

NullRegistry* NullRegistry::Get() {
  static NullRegistry instance;
  return &instance;
}

MetricRegistry& DefaultRegistry() {
  static MetricRegistry registry;
  return registry;
}

}  // namespace sketchlink::obs

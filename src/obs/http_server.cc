#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/spans.h"
#include "obs/url.h"

namespace sketchlink::obs {

namespace {

constexpr size_t kMaxRequestHeadBytes = 8 * 1024;
// The scrape plane never needs request bodies; anything beyond a trivial
// body is a client pointed at the wrong port (the service plane accepts
// multi-megabyte batches — this server does not).
constexpr size_t kMaxRequestBodyBytes = 8 * 1024;

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WriteResponse(int fd, const HttpResponse& response, uint64_t timeout_ms) {
  const std::string wire = SerializeHttpResponse(response, /*keep_alive=*/false);
  SendAllWithTimeout(fd, wire.data(), wire.size(), timeout_ms);
}

HttpResponse ErrorResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

}  // namespace

HttpServer::HttpServer(const Options& options) : options_(options) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddHandler(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running()) return Status::FailedPrecondition("server already started");

  if (::pipe(wake_pipe_) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    const Status status =
        Status::IOError(std::string("socket: ") + std::strerror(errno));
    CloseFd(&wake_pipe_[0]);
    CloseFd(&wake_pipe_[1]);
    return status;
  }
  if (options_.reuse_address) {
    // Opt-in only (see Options): lets a restart rebind through TIME_WAIT
    // without waiting out the 2*MSL linger of the previous incarnation.
    const int one = 1;
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) != 0) {
      const Status status = Status::IOError(
          std::string("setsockopt(SO_REUSEADDR): ") + std::strerror(errno));
      Stop();
      return status;
    }
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    Stop();
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    Stop();
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    Stop();
    return status;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    Stop();
    return status;
  }
  port_ = ntohs(bound.sin_port);

  serve_thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (serve_thread_.joinable()) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    serve_thread_.join();
  }
  CloseFd(&listen_fd_);
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
  port_ = 0;
}

void HttpServer::ServeLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpServer::HandleConnection(int fd) {
  // The whole exchange — reading the request and writing the response —
  // shares one per-connection deadline. A peer that trickles bytes (or
  // stops sending entirely) is answered with 408 and cut off, so the
  // serial serve thread can never be wedged by one stalled client.
  const uint64_t budget_ms = options_.io_timeout_ms;
  const uint64_t deadline =
      budget_ms == 0 ? 0 : NowMillis() + budget_ms;
  const auto remaining = [&]() -> uint64_t {
    if (budget_ms == 0) return 0;  // wait forever
    const uint64_t now = NowMillis();
    return now >= deadline ? 1 : deadline - now;  // 1ms floor: never "forever"
  };

  HttpRequestParser parser(kMaxRequestHeadBytes, kMaxRequestBodyBytes);
  char buf[2048];
  while (!parser.done() && parser.state() == HttpRequestParser::State::kNeedMore) {
    const ssize_t n = RecvWithTimeout(fd, buf, sizeof(buf), remaining());
    if (n == -2) {  // stalled peer
      if (parser.started()) {
        WriteResponse(fd, ErrorResponse(408, "request timeout\n"),
                      remaining());
      }
      return;
    }
    if (n <= 0) return;  // EOF before a full request, or socket error
    parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }

  HttpResponse response;
  if (parser.state() == HttpRequestParser::State::kError) {
    response = ErrorResponse(parser.error_status(), "bad request\n");
  } else {
    const HttpRequest& request = parser.request();
    if (request.method != "GET") {
      response = ErrorResponse(405, "method not allowed\n");
    } else {
      const auto it = handlers_.find(request.path);
      if (it == handlers_.end()) {
        response = ErrorResponse(404, "not found\n");
      } else {
        response = it->second(request);
      }
    }
  }
  WriteResponse(fd, response, remaining());
}

Status HttpGet(const std::string& host, uint16_t port, const std::string& path,
               std::string* body, int* status_code) {
  body->clear();
  if (status_code != nullptr) *status_code = 0;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host (numeric IPv4 only): " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError("connect " + host + ":" + std::to_string(port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return status;
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAllWithTimeout(fd, request.data(), request.size(),
                          /*timeout_ms=*/0)) {
    ::close(fd);
    return Status::IOError("send failed");
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/", 0) != 0 || header_end == std::string::npos) {
    return Status::IOError("malformed HTTP response");
  }
  int code = 0;
  const size_t sp = raw.find(' ');
  if (sp != std::string::npos && sp + 3 < raw.size()) {
    code = std::atoi(raw.c_str() + sp + 1);
  }
  if (status_code != nullptr) *status_code = code;
  *body = raw.substr(header_end + 4);
  if (code < 200 || code > 299) {
    return Status::IOError("HTTP status " + std::to_string(code) + " for " +
                           path);
  }
  return Status::OK();
}

std::vector<std::pair<std::string, HttpServer::Handler>> TelemetryHandlers(
    Registry* registry, Tracer* tracer) {
  std::vector<std::pair<std::string, HttpServer::Handler>> handlers;
  handlers.emplace_back("/metrics", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = ExportPrometheusText(registry->TakeSnapshot());
    return response;
  });
  handlers.emplace_back("/metrics.json", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = ExportJson(registry->TakeSnapshot());
    return response;
  });
  handlers.emplace_back("/traces", [tracer](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    std::vector<SpanRecord> spans = tracer != nullptr
                                        ? tracer->buffer().Snapshot()
                                        : std::vector<SpanRecord>();
    const uint64_t limit =
        QueryParams::Parse(request.query).GetInt("limit", spans.size());
    if (limit < spans.size()) spans.resize(limit);
    response.body = ExportChromeTraceJson(spans);
    return response;
  });
  handlers.emplace_back("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  return handlers;
}

void RegisterTelemetryHandlers(HttpServer* server, Registry* registry,
                               Tracer* tracer) {
  for (auto& [path, handler] : TelemetryHandlers(registry, tracer)) {
    server->AddHandler(std::move(path), std::move(handler));
  }
}

}  // namespace sketchlink::obs

#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/spans.h"

namespace sketchlink::obs {

namespace {

constexpr size_t kMaxRequestBytes = 8 * 1024;

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     ReasonPhrase(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    SendAll(fd, response.body.data(), response.body.size());
  }
}

/// Parses "METHOD /path?query HTTP/1.x" out of the first request line.
/// Returns false on anything malformed.
bool ParseRequestLine(const std::string& raw, HttpRequest* request) {
  const size_t line_end = raw.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t q = target.find('?');
  if (q != std::string::npos) {
    request->query = target.substr(q + 1);
    target.resize(q);
  }
  request->path = std::move(target);
  return true;
}

}  // namespace

HttpServer::HttpServer(const Options& options) : options_(options) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddHandler(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running()) return Status::FailedPrecondition("server already started");

  if (::pipe(wake_pipe_) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    const Status status =
        Status::IOError(std::string("socket: ") + std::strerror(errno));
    CloseFd(&wake_pipe_[0]);
    CloseFd(&wake_pipe_[1]);
    return status;
  }
  if (options_.reuse_address) {
    // Opt-in only (see Options): lets a restart rebind through TIME_WAIT
    // without waiting out the 2*MSL linger of the previous incarnation.
    const int one = 1;
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) != 0) {
      const Status status = Status::IOError(
          std::string("setsockopt(SO_REUSEADDR): ") + std::strerror(errno));
      Stop();
      return status;
    }
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    Stop();
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    Stop();
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    Stop();
    return status;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    Stop();
    return status;
  }
  port_ = ntohs(bound.sin_port);

  serve_thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (serve_thread_.joinable()) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    serve_thread_.join();
  }
  CloseFd(&listen_fd_);
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
  port_ = 0;
}

void HttpServer::ServeLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpServer::HandleConnection(int fd) {
  // Scrape requests are tiny; read until the header terminator, EOF, or
  // the size cap — whichever comes first.
  std::string raw;
  char buf[2048];
  while (raw.size() < kMaxRequestBytes &&
         raw.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }

  HttpRequest request;
  HttpResponse response;
  if (!ParseRequestLine(raw, &request)) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (request.method != "GET") {
    response.status = 405;
    response.body = "method not allowed\n";
  } else {
    const auto it = handlers_.find(request.path);
    if (it == handlers_.end()) {
      response.status = 404;
      response.body = "not found\n";
    } else {
      response = it->second(request);
    }
  }
  WriteResponse(fd, response);
}

Status HttpGet(const std::string& host, uint16_t port, const std::string& path,
               std::string* body, int* status_code) {
  body->clear();
  if (status_code != nullptr) *status_code = 0;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host (numeric IPv4 only): " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError("connect " + host + ":" + std::to_string(port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return status;
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return Status::IOError("send failed");
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/", 0) != 0 || header_end == std::string::npos) {
    return Status::IOError("malformed HTTP response");
  }
  int code = 0;
  const size_t sp = raw.find(' ');
  if (sp != std::string::npos && sp + 3 < raw.size()) {
    code = std::atoi(raw.c_str() + sp + 1);
  }
  if (status_code != nullptr) *status_code = code;
  *body = raw.substr(header_end + 4);
  if (code != 200) {
    return Status::IOError("HTTP status " + std::to_string(code) + " for " +
                           path);
  }
  return Status::OK();
}

void RegisterTelemetryHandlers(HttpServer* server, Registry* registry,
                               Tracer* tracer) {
  server->AddHandler("/metrics", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = ExportPrometheusText(registry->TakeSnapshot());
    return response;
  });
  server->AddHandler("/metrics.json", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = ExportJson(registry->TakeSnapshot());
    return response;
  });
  server->AddHandler("/traces", [tracer](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = ExportChromeTraceJson(
        tracer != nullptr ? tracer->buffer().Snapshot()
                          : std::vector<SpanRecord>());
    return response;
  });
  server->AddHandler("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
}

}  // namespace sketchlink::obs

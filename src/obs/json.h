#ifndef SKETCHLINK_OBS_JSON_H_
#define SKETCHLINK_OBS_JSON_H_

// Minimal JSON building blocks shared by the metrics JSON exporter and the
// benchmark sidecar writer (bench/bench_json.h) — moved here from the bench
// tree so src/ code can emit JSON without reaching into bench/.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace sketchlink::obs {

/// Escapes `s` for embedding inside a JSON string literal.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One flat JSON object built field by field (insertion order preserved).
class JsonFields {
 public:
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  /// Splices a pre-rendered JSON value (object/array) under `key`.
  void AddRaw(const std::string& key, std::string json) {
    fields_.emplace_back(key, std::move(json));
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(fields_[i].first) + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_JSON_H_

#ifndef SKETCHLINK_OBS_URL_H_
#define SKETCHLINK_OBS_URL_H_

// Query-string parsing shared by the telemetry endpoints (obs::HttpServer)
// and the service plane (serve::Server). HttpRequest::query holds the raw
// text after '?'; QueryParams splits it into percent-decoded key/value
// pairs with the usual tolerant semantics: empty pairs are skipped, a pair
// without '=' is a flag with an empty value, duplicate keys are all kept
// (first one wins for Get), and malformed percent escapes pass through
// verbatim rather than failing the whole request.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sketchlink::obs {

/// Percent-decodes `in` ("%41" -> "A", '+' -> ' '). Malformed escapes (a
/// '%' not followed by two hex digits) are kept verbatim — tolerant, never
/// throws away caller bytes.
std::string PercentDecode(std::string_view in);

/// Parsed query string: ordered, duplicate-preserving key/value pairs.
class QueryParams {
 public:
  QueryParams() = default;

  /// Parses "a=1&b=x%20y&flag" (the text after '?', not including it).
  static QueryParams Parse(std::string_view query);

  /// First value of `key`, or nullopt when absent. A bare flag ("&flag&")
  /// is present with an empty value.
  std::optional<std::string_view> Get(std::string_view key) const;

  /// First value of `key` parsed as a non-negative integer; `fallback` when
  /// absent or not a number.
  uint64_t GetInt(std::string_view key, uint64_t fallback) const;

  /// True when `key` appears at all (even with an empty value).
  bool Has(std::string_view key) const { return Get(key).has_value(); }

  size_t size() const { return params_.size(); }
  const std::vector<std::pair<std::string, std::string>>& items() const {
    return params_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> params_;
};

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_URL_H_

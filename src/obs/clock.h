#ifndef SKETCHLINK_OBS_CLOCK_H_
#define SKETCHLINK_OBS_CLOCK_H_

// Shared timestamp helpers for the tracing layers. Every obs timestamp is
// a (steady, system) pair: steady nanoseconds order events within the
// process (immune to wall-clock steps), system microseconds align merged
// snapshots across processes/hosts.

#include <chrono>
#include <cstdint>

namespace sketchlink::obs {

/// Process-steady nanoseconds (the span/trace timestamp base).
inline uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock microseconds since the Unix epoch.
inline uint64_t UnixNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace sketchlink::obs

#endif  // SKETCHLINK_OBS_CLOCK_H_

#include "bloom/annotated_bloom_filter.h"

#include "common/coding.h"

namespace sketchlink {

void AnnotatedBloomFilter::EncodeTo(std::string* dst) const {
  PutVarint64(dst, capacity_);
  PutVarint64(dst, count_);
  PutLengthPrefixed(dst, min_);
  PutLengthPrefixed(dst, max_);
  filter_.EncodeTo(dst);
}

Result<AnnotatedBloomFilter> AnnotatedBloomFilter::DecodeFrom(
    std::string_view* input) {
  uint64_t capacity;
  uint64_t count;
  std::string_view min;
  std::string_view max;
  if (!GetVarint64(input, &capacity) || !GetVarint64(input, &count) ||
      !GetLengthPrefixed(input, &min) || !GetLengthPrefixed(input, &max)) {
    return Status::Corruption("truncated annotated filter header");
  }
  auto filter = BloomFilter::DecodeFrom(input);
  if (!filter.ok()) return filter.status();
  AnnotatedBloomFilter annotated(static_cast<size_t>(capacity),
                                 std::move(*filter));
  annotated.count_ = static_cast<size_t>(count);
  annotated.min_.assign(min);
  annotated.max_.assign(max);
  return annotated;
}

}  // namespace sketchlink

#include "bloom/bloom_filter.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/coding.h"
#include "common/hash.h"

namespace sketchlink {

BloomFilter::BloomFilter(size_t num_bits, uint32_t num_hashes, uint64_t seed)
    : num_hashes_(std::max<uint32_t>(num_hashes, 1)), seed_(seed) {
  const size_t words = std::max<size_t>((num_bits + 63) / 64, 1);
  bits_.assign(words, 0);
}

BloomFilter BloomFilter::WithCapacity(size_t expected_items, double fp_rate,
                                      uint64_t seed) {
  expected_items = std::max<size_t>(expected_items, 1);
  fp_rate = std::clamp(fp_rate, 1e-9, 0.5);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_items) * std::log(fp_rate) /
                   (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  return BloomFilter(static_cast<size_t>(std::ceil(m)),
                     static_cast<uint32_t>(std::max(1.0, std::round(k))),
                     seed);
}

void BloomFilter::Insert(std::string_view key) {
  DoubleHasher hasher(key, seed_);
  const uint64_t range = num_bits();
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = hasher.Probe(i, range);
    bits_[pos >> 6] |= (1ULL << (pos & 63));
  }
  ++insert_count_;
}

bool BloomFilter::MayContain(std::string_view key) const {
  DoubleHasher hasher(key, seed_);
  const uint64_t range = num_bits();
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = hasher.Probe(i, range);
    if ((bits_[pos >> 6] & (1ULL << (pos & 63))) == 0) return false;
  }
  return true;
}

size_t BloomFilter::CountSetBits() const {
  size_t count = 0;
  for (uint64_t word : bits_) count += std::popcount(word);
  return count;
}

double BloomFilter::EstimatedFpRate() const {
  const double m = static_cast<double>(num_bits());
  const double kn = static_cast<double>(num_hashes_) *
                    static_cast<double>(insert_count_);
  return std::pow(1.0 - std::exp(-kn / m), num_hashes_);
}

void BloomFilter::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  insert_count_ = 0;
}

Status BloomFilter::UnionWith(const BloomFilter& other) {
  if (other.bits_.size() != bits_.size() ||
      other.num_hashes_ != num_hashes_ || other.seed_ != seed_) {
    return Status::InvalidArgument(
        "cannot union Bloom filters with different geometry");
  }
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  insert_count_ += other.insert_count_;
  return Status::OK();
}

size_t BloomFilter::ApproximateMemoryUsage() const {
  return sizeof(*this) + bits_.capacity() * sizeof(uint64_t);
}

void BloomFilter::EncodeTo(std::string* dst) const {
  PutVarint32(dst, num_hashes_);
  PutFixed64(dst, seed_);
  PutVarint64(dst, insert_count_);
  PutVarint64(dst, bits_.size());
  for (uint64_t word : bits_) PutFixed64(dst, word);
}

Result<BloomFilter> BloomFilter::DecodeFrom(std::string_view* input) {
  uint32_t num_hashes;
  uint64_t seed;
  uint64_t insert_count;
  uint64_t num_words;
  if (!GetVarint32(input, &num_hashes) || !GetFixed64(input, &seed) ||
      !GetVarint64(input, &insert_count) ||
      !GetVarint64(input, &num_words)) {
    return Status::Corruption("truncated Bloom filter header");
  }
  if (input->size() < num_words * 8) {
    return Status::Corruption("truncated Bloom filter bits");
  }
  BloomFilter filter(num_words * 64, num_hashes, seed);
  filter.insert_count_ = insert_count;
  for (uint64_t i = 0; i < num_words; ++i) {
    uint64_t word;
    GetFixed64(input, &word);
    filter.bits_[i] = word;
  }
  return filter;
}

}  // namespace sketchlink

#ifndef SKETCHLINK_BLOOM_ANNOTATED_BLOOM_FILTER_H_
#define SKETCHLINK_BLOOM_ANNOTATED_BLOOM_FILTER_H_

#include <string>
#include <string_view>

#include "bloom/bloom_filter.h"
#include "common/memory_tracker.h"
#include "common/status.h"

namespace sketchlink {

/// A Bloom filter annotated with the lexicographically smallest and greatest
/// keys it has absorbed, plus a bounded capacity. SkipBloom (Sec. 4) keeps a
/// short chain of these per sampled block: the [min, max] annotation lets
/// queries and block splits skip filters whose range cannot contain the key,
/// and lets a newly sampled key take over (reference) the filters of its
/// predecessor that may hold keys now belonging to it (Fig. 2).
class AnnotatedBloomFilter {
 public:
  /// `capacity` is the maximum number of keys this filter accepts before
  /// SkipBloom rotates to a fresh one; geometry is sized for that capacity
  /// at the requested false-positive rate.
  AnnotatedBloomFilter(size_t capacity, double fp_rate, uint64_t seed = 0)
      : capacity_(capacity == 0 ? 1 : capacity),
        filter_(BloomFilter::WithCapacity(capacity == 0 ? 1 : capacity,
                                          fp_rate, seed)) {}

  /// Inserts `key` and widens the [min, max] annotation.
  void Insert(std::string_view key) {
    filter_.Insert(key);
    if (count_ == 0) {
      min_.assign(key);
      max_.assign(key);
    } else {
      if (key < min_) min_.assign(key);
      if (key > max_) max_.assign(key);
    }
    ++count_;
  }

  /// Returns true if `key` falls inside the annotated range; empty filters
  /// cover nothing.
  bool RangeCovers(std::string_view key) const {
    return count_ > 0 && key >= min_ && key <= max_;
  }

  /// Range check + probabilistic membership (Algorithm 1, lines 4-5).
  bool MayContain(std::string_view key) const {
    return RangeCovers(key) && filter_.MayContain(key);
  }

  /// True once `capacity` keys have been inserted.
  bool Full() const { return count_ >= capacity_; }

  /// Number of keys inserted (counting duplicates).
  size_t count() const { return count_; }

  /// Smallest inserted key ("" when empty).
  const std::string& min_key() const { return min_; }

  /// Greatest inserted key ("" when empty).
  const std::string& max_key() const { return max_; }

  /// Underlying filter, exposed for diagnostics.
  const BloomFilter& filter() const { return filter_; }

  /// Bytes held by this object.
  size_t ApproximateMemoryUsage() const {
    return sizeof(*this) - sizeof(BloomFilter) +
           filter_.ApproximateMemoryUsage() + StringHeapBytes(min_) +
           StringHeapBytes(max_);
  }

  /// Serializes capacity, count, annotations and the bit array (appended to
  /// `*dst`). Used when a SkipBloom synopsis is shipped to another site.
  void EncodeTo(std::string* dst) const;

  /// Reconstructs a filter from EncodeTo output.
  static Result<AnnotatedBloomFilter> DecodeFrom(std::string_view* input);

 private:
  AnnotatedBloomFilter(size_t capacity, BloomFilter filter)
      : capacity_(capacity), filter_(std::move(filter)) {}

  size_t capacity_;
  size_t count_ = 0;
  std::string min_;
  std::string max_;
  BloomFilter filter_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOOM_ANNOTATED_BLOOM_FILTER_H_

#include "bloom/counting_bloom_filter.h"

#include <algorithm>
#include <cmath>

namespace sketchlink {

CountingBloomFilter CountingBloomFilter::WithCapacity(size_t expected_items,
                                                      double fp_rate,
                                                      uint64_t seed) {
  expected_items = std::max<size_t>(expected_items, 1);
  fp_rate = std::clamp(fp_rate, 1e-9, 0.5);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_items) * std::log(fp_rate) /
                   (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  return CountingBloomFilter(
      static_cast<size_t>(std::ceil(m)),
      static_cast<uint32_t>(std::max(1.0, std::round(k))), seed);
}

void CountingBloomFilter::Insert(std::string_view key) {
  DoubleHasher hasher(key, seed_);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint8_t& cell = counters_[hasher.Probe(i, counters_.size())];
    if (cell == 255) continue;  // saturated: sticks
    if (++cell == 255) ++saturated_;
  }
  ++insert_count_;
}

void CountingBloomFilter::Remove(std::string_view key) {
  DoubleHasher hasher(key, seed_);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint8_t& cell = counters_[hasher.Probe(i, counters_.size())];
    if (cell == 255 || cell == 0) continue;  // saturated or already empty
    --cell;
  }
  if (insert_count_ > 0) --insert_count_;
}

bool CountingBloomFilter::MayContain(std::string_view key) const {
  DoubleHasher hasher(key, seed_);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    if (counters_[hasher.Probe(i, counters_.size())] == 0) return false;
  }
  return true;
}

}  // namespace sketchlink

#ifndef SKETCHLINK_BLOOM_COUNTING_BLOOM_FILTER_H_
#define SKETCHLINK_BLOOM_COUNTING_BLOOM_FILTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace sketchlink {

/// Bloom filter with 8-bit counters instead of bits, supporting deletion:
/// Insert increments the k counters, Remove decrements them, MayContain
/// checks they are all non-zero. Saturated counters (255) stick, keeping
/// the no-false-negative guarantee for keys still present at the cost of
/// possible permanent false positives after heavy churn.
///
/// Used for mutable key universes (the paper's synopsis is insert-only;
/// supporting custodians whose blocking keys are retracted — GDPR-style
/// record erasure — needs deletions, which this provides).
class CountingBloomFilter {
 public:
  /// `num_counters` cells with `num_hashes` probes per key.
  CountingBloomFilter(size_t num_counters, uint32_t num_hashes,
                      uint64_t seed = 0)
      : num_hashes_(num_hashes == 0 ? 1 : num_hashes),
        seed_(seed),
        counters_(num_counters == 0 ? 1 : num_counters, 0) {}

  /// Sized for `expected_items` at false-positive rate `fp_rate` (same
  /// formula as the plain filter; 8x the memory for deletability).
  static CountingBloomFilter WithCapacity(size_t expected_items,
                                          double fp_rate, uint64_t seed = 0);

  /// Increments the key's counters.
  void Insert(std::string_view key);

  /// Decrements the key's counters. Removing a key that was never inserted
  /// corrupts membership of colliding keys — callers must pair Remove with
  /// a prior Insert (checked in debug builds by the caller, not here; the
  /// filter cannot distinguish).
  void Remove(std::string_view key);

  /// True if the key may be present; false means definitely absent.
  bool MayContain(std::string_view key) const;

  uint64_t insert_count() const { return insert_count_; }
  size_t num_counters() const { return counters_.size(); }

  /// Number of counters that have saturated (stuck at 255).
  size_t saturated_count() const { return saturated_; }

  size_t ApproximateMemoryUsage() const {
    return sizeof(*this) + counters_.capacity();
  }

 private:
  uint32_t num_hashes_;
  uint64_t seed_;
  uint64_t insert_count_ = 0;
  size_t saturated_ = 0;
  std::vector<uint8_t> counters_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOOM_COUNTING_BLOOM_FILTER_H_

#ifndef SKETCHLINK_BLOOM_RECORD_ENCODER_H_
#define SKETCHLINK_BLOOM_RECORD_ENCODER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sketchlink {

/// Fixed-width bit vector produced by RecordBloomEncoder; the unit of
/// Hamming-space operations (XOR distance, bit sampling for LSH).
class BitVector {
 public:
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  void SetBit(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  bool GetBit(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  size_t num_bits() const { return num_bits_; }
  size_t CountSetBits() const;

  /// Hamming distance to another vector of the same width.
  size_t HammingDistance(const BitVector& other) const;

  /// Raw words, for hashing sampled positions.
  const std::vector<uint64_t>& words() const { return words_; }

  size_t ApproximateMemoryUsage() const {
    return sizeof(*this) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

/// Record-level Bloom filter encoder (CLK; Schnell, Bachteler & Reiher 2009):
/// maps all q-grams of all selected fields of a record into one fixed-width
/// bit vector, embedding the record into the Hamming space. This is the
/// embedding Hamming LSH blocking operates on (paper Sec. 7, [18]).
class RecordBloomEncoder {
 public:
  /// `num_bits` is the embedding width (the paper's record-level filters use
  /// ~1000 bits), `num_hashes` the hash functions per q-gram, `q` the gram
  /// width.
  RecordBloomEncoder(size_t num_bits, uint32_t num_hashes, size_t q = 2,
                     uint64_t seed = 0x5eedULL)
      : num_bits_(num_bits), num_hashes_(num_hashes), q_(q), seed_(seed) {}

  /// Encodes the concatenation of `fields` into a BitVector.
  BitVector Encode(const std::vector<std::string>& fields) const;

  /// Encodes a single string.
  BitVector EncodeString(std::string_view value) const;

  size_t num_bits() const { return num_bits_; }

 private:
  void AddGrams(std::string_view value, BitVector* out) const;

  size_t num_bits_;
  uint32_t num_hashes_;
  size_t q_;
  uint64_t seed_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOOM_RECORD_ENCODER_H_

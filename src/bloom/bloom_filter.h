#ifndef SKETCHLINK_BLOOM_BLOOM_FILTER_H_
#define SKETCHLINK_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sketchlink {

/// Standard Bloom filter over strings (Sec. 3.2 of the paper): `num_bits`
/// bit positions set by `num_hashes` universal hash functions. Supports
/// membership queries with a false-positive probability and no false
/// negatives. Probe positions are derived from a single 128-bit Murmur3
/// hash via double hashing (Kirsch-Mitzenmacher), so inserts and queries
/// cost one string hash regardless of k.
class BloomFilter {
 public:
  /// Creates a filter with exactly `num_bits` bits and `num_hashes` hash
  /// functions. `num_bits` is rounded up to a multiple of 64.
  BloomFilter(size_t num_bits, uint32_t num_hashes, uint64_t seed = 0);

  /// Creates a filter sized for `expected_items` items at false-positive
  /// rate `fp_rate`, using the optimal m = -n*ln(p)/ln(2)^2 and
  /// k = (m/n)*ln(2).
  static BloomFilter WithCapacity(size_t expected_items, double fp_rate,
                                  uint64_t seed = 0);

  BloomFilter(const BloomFilter&) = default;
  BloomFilter& operator=(const BloomFilter&) = default;
  BloomFilter(BloomFilter&&) noexcept = default;
  BloomFilter& operator=(BloomFilter&&) noexcept = default;

  /// Inserts `key`.
  void Insert(std::string_view key);

  /// Returns true if `key` may have been inserted (with fp probability),
  /// false if it definitely has not been.
  bool MayContain(std::string_view key) const;

  /// Number of Insert() calls so far (counts duplicates).
  uint64_t insert_count() const { return insert_count_; }

  /// Number of bits in the filter.
  size_t num_bits() const { return bits_.size() * 64; }

  /// Number of hash functions.
  uint32_t num_hashes() const { return num_hashes_; }

  /// Number of bits currently set to 1.
  size_t CountSetBits() const;

  /// Expected false-positive rate given the current fill: (1 - e^{-kn/m})^k.
  double EstimatedFpRate() const;

  /// Resets all bits to zero.
  void Clear();

  /// Bitwise-ORs another filter into this one. The filters must have equal
  /// geometry (bits, hashes, seed).
  Status UnionWith(const BloomFilter& other);

  /// Bytes of memory held by this filter (bit array + bookkeeping).
  size_t ApproximateMemoryUsage() const;

  /// Serializes geometry + bits to `dst` (appended).
  void EncodeTo(std::string* dst) const;

  /// Reconstructs a filter from EncodeTo output.
  static Result<BloomFilter> DecodeFrom(std::string_view* input);

 private:
  uint32_t num_hashes_;
  uint64_t seed_;
  uint64_t insert_count_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace sketchlink

#endif  // SKETCHLINK_BLOOM_BLOOM_FILTER_H_

#include "bloom/record_encoder.h"

#include <bit>

#include "common/hash.h"
#include "text/qgram.h"

namespace sketchlink {

size_t BitVector::CountSetBits() const {
  size_t count = 0;
  for (uint64_t word : words_) count += std::popcount(word);
  return count;
}

size_t BitVector::HammingDistance(const BitVector& other) const {
  size_t dist = 0;
  const size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    dist += std::popcount(words_[i] ^ other.words_[i]);
  }
  // Width mismatch counts the tail of the longer vector.
  for (size_t i = n; i < words_.size(); ++i) {
    dist += std::popcount(words_[i]);
  }
  for (size_t i = n; i < other.words_.size(); ++i) {
    dist += std::popcount(other.words_[i]);
  }
  return dist;
}

void RecordBloomEncoder::AddGrams(std::string_view value,
                                  BitVector* out) const {
  for (const std::string& gram : text::QGrams(value, q_, /*pad=*/true)) {
    DoubleHasher hasher(gram, seed_);
    for (uint32_t i = 0; i < num_hashes_; ++i) {
      out->SetBit(hasher.Probe(i, num_bits_));
    }
  }
}

BitVector RecordBloomEncoder::Encode(
    const std::vector<std::string>& fields) const {
  BitVector out(num_bits_);
  for (const std::string& field : fields) AddGrams(field, &out);
  return out;
}

BitVector RecordBloomEncoder::EncodeString(std::string_view value) const {
  BitVector out(num_bits_);
  AddGrams(value, &out);
  return out;
}

}  // namespace sketchlink
